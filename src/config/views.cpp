#include "config/views.h"

#include "obs/profile.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "config/derived.h"
#include "config/parallel.h"
#include "geometry/angles.h"
#include "geometry/cyclic.h"
#include "geometry/kernels.h"
#include "util/check.h"
#include "util/radix.h"
#include "util/thread_pool.h"

namespace gather::config {

namespace {

/// Normalized distance and multiplicity of one non-self occupied location.
struct raw_tag {
  double dist;
  int mult;
};

/// Radix key of one raw view angle: the bit pattern of a non-negative double
/// is order-isomorphic to its value, so the per-view angular sort runs as a
/// stable byte-wise radix pass instead of a comparison sort.  `cw_angle`
/// returns values in [0, 2*pi) plus possibly -0.0, whose sign bit would sort
/// it above everything -- it is canonicalized to the +0.0 pattern (the two
/// zeros are numerically interchangeable everywhere downstream: clustering
/// sums, run detection and snapping all compare by value, and every emitted
/// angle is a snapped representative, never the raw zero).
std::uint64_t angle_key(double a) {
  const std::uint64_t k = std::bit_cast<std::uint64_t>(a);
  return (k >> 63) != 0 ? 0 : k;
}

/// View of `p` using the explicit reference direction `ref` (non-zero).
/// `dist_of(j)` must return `geom::distance(p, occupied[j].position)` -- the
/// indexed all_views path serves it from the shared pairwise table, the
/// arbitrary-point path computes it directly.
///
/// The view is a sorted multiset of (snapped angle, dist) entries, so it is
/// emitted directly in sorted order instead of being sorted afterwards: the
/// snapped angles of ascending raw angles form a cyclic rotation of the
/// sorted representatives (the nearest-rep map partitions the circle into
/// contiguous arcs, one per representative), so runs of equal snapped value
/// are already almost sorted -- only the run whose arc spans the 0/2*pi seam
/// can appear twice, split across the front and back of the sequence.  Angle
/// clustering and snapping run on the derived-geometry scratch buffers and
/// are bit-identical to the reference pipeline's per-view pass (fuzzed by
/// test_view_pipeline).
template <class DistFn>
void view_with_reference_into(const configuration& c, vec2 p, vec2 ref,
                              DistFn&& dist_of, view& v) {
  const double r = std::max(c.sec().radius, 1e-300);
  const geom::tol& t = c.tolerance();
  derived_geometry& d = c.derived();
  thread_local std::vector<raw_tag> tags;
  thread_local std::vector<util::key_idx> order;
  thread_local std::vector<util::key_idx> radix_tmp;
  std::vector<double>& raw_angles = d.scratch_thetas;
  int self_mult = 0;
  const auto& occ = c.occupied();
  // Pre-sized writes instead of push_backs: the fill loop runs once per
  // (observer, robot) pair, so its per-element cost dominates the pipeline.
  order.resize(occ.size());
  tags.resize(occ.size());
  std::size_t nt = 0;
  for (std::size_t j = 0; j < occ.size(); ++j) {
    const occupied_point& o = occ[j];
    // same_point(a, b) is len_zero(distance(a, b)), so one distance serves
    // both the self test and the normalized view distance.
    const double dn = dist_of(j);
    if (t.len_zero(dn)) {
      self_mult += o.multiplicity;
    } else {
      order[nt] = {angle_key(geom::cw_angle(ref, o.position - p)),
                   static_cast<std::uint32_t>(nt)};
      tags[nt] = {dn / r, o.multiplicity};
      ++nt;
    }
  }
  order.resize(nt);
  tags.resize(nt);
  v.clear();
  v.reserve(c.size());
  // Self entries are the global minimum: 0.0 is the least possible angle and
  // every non-self dist is >= 0.0 (so equal-key entries are identical bytes).
  for (int k = 0; k < self_mult; ++k) v.push_back({0.0, 0.0});
  if (tags.empty()) return;
  // One sort serves both the clustering pass and the tag alignment (equal
  // raw angles snap to the same value, so any tie order works).
  util::radix_sort_key_idx(order, radix_tmp);
  raw_angles.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    raw_angles[i] = std::bit_cast<double>(order[i].key);
  }
  // Snap angles to cluster representatives so the emitted order is exact:
  // co-ray entries share one angle and near-0 noise cannot land at ~2*pi
  // (which would scramble the lexicographic order between twin views).
  geom::cluster_presorted_angles_into(raw_angles, t.angle_eps,
                                      d.scratch_reps);
  geom::snap_sorted_angles(raw_angles, d.scratch_reps);
  // Common generic case: every snapped value distinct and strictly ascending
  // means every run is a singleton already in emission order (and no
  // seam-split pair exists) -- emit directly, skipping the span machinery.
  bool ascending = true;
  for (std::size_t i = 1; i < nt; ++i) {
    if (raw_angles[i - 1] >= raw_angles[i]) {
      ascending = false;
      break;
    }
  }
  if (ascending) {
    for (std::size_t i = 0; i < nt; ++i) {
      const raw_tag& m = tags[order[i].idx];
      for (int k = 0; k < m.mult; ++k) v.push_back({raw_angles[i], m.dist});
    }
    return;
  }
  // Runs of equal snapped value, merging the seam-split pair (first/last
  // runs are the only ones that can share a value, see above).
  struct run_span {
    double value;
    std::size_t b1, e1, b2, e2;  // member tag ranges [b1,e1) and [b2,e2)
  };
  thread_local std::vector<run_span> spans;
  spans.clear();
  for (std::size_t i = 0; i < nt;) {
    std::size_t j = i + 1;
    while (j < nt && raw_angles[j] == raw_angles[i]) ++j;
    spans.push_back({raw_angles[i], i, j, j, j});
    i = j;
  }
  if (spans.size() > 1 && spans.front().value == spans.back().value) {
    spans.front().b2 = spans.back().b1;
    spans.front().e2 = spans.back().e1;
    spans.pop_back();
  }
  // Values are now distinct, so this sort is exact (and tiny: one element
  // per distinct snapped angle).
  std::sort(spans.begin(), spans.end(),
            [](const run_span& a, const run_span& b) { return a.value < b.value; });
  const auto by_dist = [](const raw_tag& a, const raw_tag& b) {
    return a.dist < b.dist;
  };
  thread_local std::vector<raw_tag> members;
  for (const run_span& s : spans) {
    if (s.e1 - s.b1 == 1 && s.b2 == s.e2) {
      // Singleton run (the common case for generic configurations).
      const raw_tag& m = tags[order[s.b1].idx];
      for (int k = 0; k < m.mult; ++k) v.push_back({s.value, m.dist});
      continue;
    }
    members.clear();
    for (std::size_t i = s.b1; i < s.e1; ++i)
      members.push_back(tags[order[i].idx]);
    for (std::size_t i = s.b2; i < s.e2; ++i)
      members.push_back(tags[order[i].idx]);
    std::sort(members.begin(), members.end(), by_dist);
    for (const raw_tag& m : members)
      for (int k = 0; k < m.mult; ++k) v.push_back({s.value, m.dist});
  }
}

/// Thread-local scratch of the kernel-based fill pipeline.  One instance per
/// worker: the parallel fill runs one observer pipeline per shard entry, so
/// nothing here is shared across threads.
struct fill_scratch {
  std::vector<double> cr, dt, angles;    // per-location, k entries
  std::vector<double> dists;             // per-tag, normalized in place
  std::vector<int> mults;                // per-tag
  std::vector<util::key_idx> order;
  std::vector<util::key_idx> radix_tmp;
  std::vector<std::uint32_t> buckets;
  std::vector<double> thetas, reps;
  std::vector<geom::kernels::polar_rec> recs, rec_tmp;  // fused record path
};

/// The fused record path of the bulk fill: for observers of an
/// all-multiplicity-one configuration whose snapped angles turn out to be
/// untouched by clustering (the overwhelmingly common case for generic
/// configurations), the whole pipeline collapses to one loop building
/// 16-byte (angle key, normalized dist) records, a stable bucket sort of the
/// records, and a byte copy into the view -- polar_rec is layout-compatible
/// with polar_entry, and the key is the angle's bit pattern, so the sorted
/// record array IS the view payload.  Each scalar step reproduces the
/// reference formulas literally (cross/dot/atan2/divide in the same order on
/// the same operands), so the emitted bytes match `view_with_reference_into`
/// exactly.  Returns false -- leaving `v` unspecified -- when the observer
/// needs the general pipeline: a clustering-active angle multiset, or a raw
/// -0.0 angle (whose key canonicalization the general path handles).
bool try_view_from_row_fast(vec2 p, vec2 ref, double r, const geom::tol& t,
                            const double* xs, const double* ys,
                            const double* row, std::size_t k,
                            fill_scratch& fs, view& v) {
  fs.recs.resize(k);
  std::uint64_t or_keys = 0;
  std::size_t self_mult = 0;
  std::size_t nt = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const double dn = row[j];
    if (t.len_zero(dn)) {
      ++self_mult;  // every multiplicity is 1 on this path
      continue;
    }
    // geom::cw_angle(ref, {xs[j], ys[j]} - p), spelled out so the angle
    // computation fuses with the record build (the atan2 latency hides the
    // integer work around it).
    const double dx = xs[j] - p.x;
    const double dy = ys[j] - p.y;
    const double cr = ref.x * dy - ref.y * dx;
    const double dt = ref.x * dx + ref.y * dy;
    const double ang = geom::norm_angle(-std::atan2(cr, dt));
    const std::uint64_t key = std::bit_cast<std::uint64_t>(ang);
    or_keys |= key;
    fs.recs[nt] = {key, dn / r};
    ++nt;
  }
  // A set sign bit means some angle came out as -0.0: its canonical key is
  // the +0.0 pattern, not its own bits, so the record trick doesn't apply.
  if ((or_keys >> 63) != 0) return false;
  fs.recs.resize(nt);
  geom::kernels::sort_polar_recs(fs.recs, fs.rec_tmp, fs.buckets);
  if (!geom::kernels::snap_is_identity_recs(fs.recs.data(), nt,
                                            t.angle_eps)) {
    return false;
  }
  // Snap is the identity and every multiplicity is 1: the sorted records are
  // the view, byte for byte, after the self entries (the global minimum --
  // see view_with_reference_into).  resize value-initializes, so the self
  // prefix is already {0.0, 0.0}.
  static_assert(sizeof(geom::kernels::polar_rec) == sizeof(polar_entry));
  static_assert(std::is_trivially_copyable_v<polar_entry>);
  v.clear();
  v.resize(self_mult + nt);
  std::memcpy(static_cast<void*>(v.data() + self_mult), fs.recs.data(),
              nt * sizeof(polar_entry));
  return true;
}

/// The batched sibling of `view_with_reference_into` used by the bulk fill:
/// same pipeline (normalize, polar-sort, cluster, snap, emit), but the polar
/// decomposition, normalization and angular sort run through the batch
/// kernels over the SoA coordinate mirror, and configurations whose snapped
/// angles are provably untouched by clustering skip that pass entirely.
/// Every step is bit-equivalent to the reference pipeline (see the kernel
/// contracts in geometry/kernels.h and snap_is_identity), so the emitted
/// view matches `view_with_reference_into` byte for byte -- fuzzed by
/// tests/kernel_test.cpp against fill_all_view_slots_reference.
void view_from_row_into(const configuration& c, vec2 p, vec2 ref, double r,
                        const geom::tol& t, const double* xs,
                        const double* ys, const double* row, fill_scratch& fs,
                        view& v) {
  const auto& occ = c.occupied();
  const std::size_t k = occ.size();
  fs.cr.resize(k);
  fs.dt.resize(k);
  fs.angles.resize(k);
  // Batched cw_angle over every location (self rows are computed and then
  // discarded -- atan2(+-0, +-0) is well-defined, and self entries are rare).
  geom::kernels::cross_dot_about(xs, ys, k, p.x, p.y, ref.x, ref.y,
                                 fs.cr.data(), fs.dt.data());
  geom::kernels::cw_angles_from_cross_dot(fs.cr.data(), fs.dt.data(), k,
                                          fs.angles.data());
  fs.order.resize(k);
  fs.dists.resize(k);
  fs.mults.resize(k);
  int self_mult = 0;
  std::size_t nt = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const double dn = row[j];
    if (t.len_zero(dn)) {
      self_mult += occ[j].multiplicity;
    } else {
      fs.order[nt] = {angle_key(fs.angles[j]), static_cast<std::uint32_t>(nt)};
      fs.dists[nt] = dn;
      fs.mults[nt] = occ[j].multiplicity;
      ++nt;
    }
  }
  fs.order.resize(nt);
  // One batched division replaces the per-tag dn / r of the reference path
  // (IEEE division: identical bytes).
  geom::kernels::divide_batch(fs.dists.data(), nt, r, fs.dists.data());
  v.clear();
  v.reserve(c.size());
  for (int m = 0; m < self_mult; ++m) v.push_back({0.0, 0.0});
  if (nt == 0) return;
  geom::kernels::sort_angle_keys(fs.order, fs.radix_tmp, fs.buckets);
  fs.thetas.resize(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    fs.thetas[i] = std::bit_cast<double>(fs.order[i].key);
  }
  if (!geom::kernels::snap_is_identity(fs.thetas.data(), nt, t.angle_eps)) {
    geom::cluster_presorted_angles_into(fs.thetas, t.angle_eps, fs.reps);
    geom::snap_sorted_angles(fs.thetas, fs.reps);
  }
  // Emission mirrors view_with_reference_into on the snapped angles; when
  // snap_is_identity held, the angles are untouched and strictly ascending,
  // so the ascending fast path below applies by construction.
  bool ascending = true;
  for (std::size_t i = 1; i < nt; ++i) {
    if (fs.thetas[i - 1] >= fs.thetas[i]) {
      ascending = false;
      break;
    }
  }
  if (ascending) {
    for (std::size_t i = 0; i < nt; ++i) {
      const std::uint32_t ti = fs.order[i].idx;
      for (int m = 0; m < fs.mults[ti]; ++m) {
        v.push_back({fs.thetas[i], fs.dists[ti]});
      }
    }
    return;
  }
  struct run_span {
    double value;
    std::size_t b1, e1, b2, e2;  // member tag ranges [b1,e1) and [b2,e2)
  };
  thread_local std::vector<run_span> spans;
  spans.clear();
  for (std::size_t i = 0; i < nt;) {
    std::size_t j = i + 1;
    while (j < nt && fs.thetas[j] == fs.thetas[i]) ++j;
    spans.push_back({fs.thetas[i], i, j, j, j});
    i = j;
  }
  if (spans.size() > 1 && spans.front().value == spans.back().value) {
    spans.front().b2 = spans.back().b1;
    spans.front().e2 = spans.back().e1;
    spans.pop_back();
  }
  std::sort(spans.begin(), spans.end(),
            [](const run_span& a, const run_span& b) { return a.value < b.value; });
  const auto by_dist = [](const raw_tag& a, const raw_tag& b) {
    return a.dist < b.dist;
  };
  thread_local std::vector<raw_tag> members;
  for (const run_span& s : spans) {
    if (s.e1 - s.b1 == 1 && s.b2 == s.e2) {
      const std::uint32_t ti = fs.order[s.b1].idx;
      for (int m = 0; m < fs.mults[ti]; ++m) {
        v.push_back({s.value, fs.dists[ti]});
      }
      continue;
    }
    members.clear();
    for (std::size_t i = s.b1; i < s.e1; ++i) {
      const std::uint32_t ti = fs.order[i].idx;
      members.push_back({fs.dists[ti], fs.mults[ti]});
    }
    for (std::size_t i = s.b2; i < s.e2; ++i) {
      const std::uint32_t ti = fs.order[i].idx;
      members.push_back({fs.dists[ti], fs.mults[ti]});
    }
    std::sort(members.begin(), members.end(), by_dist);
    for (const raw_tag& m : members) {
      for (int q = 0; q < m.mult; ++q) v.push_back({s.value, m.dist});
    }
  }
}

view view_with_reference(const configuration& c, vec2 p, vec2 ref) {
  view v;
  view_with_reference_into(
      c, p, ref,
      [&](std::size_t j) {
        return geom::distance(p, c.occupied()[j].position);
      },
      v);
  return v;
}

/// view_of_uncached writing into caller storage: the cache fill paths use
/// this so a slot keeps its capacity across generations (a fresh vector
/// move-assigned over the slot would throw the old allocation away).
void view_of_into(const configuration& c, vec2 p, view& out) {
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  if (!t.same_point(p, center)) {
    GATHER_PROF("config.views");
    view_with_reference_into(
        c, p, center - p,
        [&](std::size_t j) {
          return geom::distance(p, c.occupied()[j].position);
        },
        out);
    return;
  }
  // Center observer: the Def. 2 maximizer scan builds by value (rare path);
  // copy into the slot to preserve its capacity.
  const view tmp = detail::view_of_uncached(c, p);
  out.assign(tmp.begin(), tmp.end());
}

/// Size the view slot arrays for `k` occupied locations.  The pool is
/// grow-only: a shrink only trims the logical size (view_ready), leaving the
/// tail slots' capacity parked for when occupancy grows back.
void size_view_slots(derived_geometry& d, std::size_t k) {
  if (d.view_ready.size() != k) {
    if (d.views.size() < k) d.views.resize(k);
    d.view_ready.assign(k, 0);
  }
}

/// The cached view slot for occupied index `i`, computing it on first use.
const view& cached_view_slot(const configuration& c, std::size_t i) {
  derived_geometry& d = c.derived();
  size_view_slots(d, c.distinct_count());
  if (!d.view_ready[i]) {
    view_of_into(c, c.occupied()[i].position, d.views[i]);
    d.view_ready[i] = 1;
  }
  return d.views[i];
}

/// Exact-value quantizer: chain-clusters a sorted value multiset (gap > eps
/// starts a new class) and maps each contained value to its class id by
/// binary search.  With `seam`, the trailing class wraps onto class 0 when
/// the two touch modulo 2*pi -- the same merge rule the angle snapping uses,
/// so tolerance-equal (ang_eq_mod / |a-b| <= eps) values always share a
/// class id.
struct quantizer {
  std::vector<double> vals;
  std::vector<std::uint32_t> cls;

  void build(double eps, bool seam) {
    std::sort(vals.begin(), vals.end());
    cls.resize(vals.size());
    std::uint32_t id = 0;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (i > 0 && vals[i] - vals[i - 1] > eps) ++id;
      cls[i] = id;
    }
    if (seam && id > 0 &&
        (vals.front() + geom::two_pi) - vals.back() <= eps) {
      for (std::size_t j = vals.size(); j-- > 0 && cls[j] == id;) cls[j] = 0;
    }
  }

  [[nodiscard]] std::uint32_t id_of(double v) const {
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(vals.begin(), vals.end(), v) - vals.begin());
    return cls[i];
  }
};

/// sym(C) as the largest view class -- the literal Def. 3 reading, used by
/// the string-based path only for the degenerate near-center fallback.
int symmetry_by_view_classes(const configuration& c) {
  int best = 0;
  for (const auto& cls : view_classes(c)) {
    best = std::max(best, static_cast<int>(cls.size()));
  }
  return std::max(best, 1);
}

}  // namespace

int compare_views(const view& a, const view& b, const geom::tol& t) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Angles on the circle: values within tolerance of each other (including
    // across the 0/2*pi seam) compare equal.
    if (!t.ang_eq_mod(a[i].angle, b[i].angle, geom::two_pi)) {
      return a[i].angle < b[i].angle ? -1 : 1;
    }
    // Distances are normalized by the sec radius, so tolerance is absolute.
    if (std::fabs(a[i].dist - b[i].dist) > t.rel) {
      return a[i].dist < b[i].dist ? -1 : 1;
    }
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

namespace detail {

view view_of_uncached(const configuration& c, vec2 p) {
  GATHER_PROF("config.views");
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  if (!t.same_point(p, center)) {
    return view_with_reference(c, p, center - p);
  }
  // p is the center of the smallest enclosing circle: the reference points at
  // an occupied location x != p maximizing V(x) (Def. 2).  Among maximizers we
  // take the lexicographically greatest resulting view of p, which is
  // well-defined and frame-independent.
  //
  // For any peer o with !same_point(o, center), view_of_uncached(c, o) takes
  // the non-center branch above and equals view_with_reference(c, o,
  // center - o) bit for bit -- so the maximizer scan reads the per-index
  // cache slots instead of recomputing every peer's view (the reference
  // oracle's O(n) extra view builds per center observer).
  const auto& occ = c.occupied();
  view best_other;
  bool have_other = false;
  view peer_local;  // a peer inside the center's tolerance ball (rare)
  std::vector<vec2> maximizers;
  for (std::size_t i = 0; i < occ.size(); ++i) {
    const occupied_point& o = occ[i];
    if (t.same_point(o.position, p)) continue;
    const view* v;
    if (!t.same_point(o.position, center)) {
      v = &cached_view_slot(c, i);
    } else {
      // o is tolerance-equal to the center but not to p: its own view would
      // recurse into this branch, so compute the Def. 2 profile directly.
      peer_local = view_with_reference(c, o.position, center - o.position);
      v = &peer_local;
    }
    if (!have_other || compare_views(*v, best_other, t) > 0) {
      best_other = *v;
      have_other = true;
      maximizers.clear();
      maximizers.push_back(o.position);
    } else if (compare_views(*v, best_other, t) == 0) {
      maximizers.push_back(o.position);
    }
  }
  if (!have_other) {
    // Every robot is at p: the trivial view.
    return view(c.size(), polar_entry{0.0, 0.0});
  }
  view best;
  bool have = false;
  for (vec2 x : maximizers) {
    view v = view_with_reference(c, p, x - p);
    if (!have || compare_views(v, best, t) > 0) {
      best = std::move(v);
      have = true;
    }
  }
  return best;
}

void fill_all_view_slots(const configuration& c) {
  const auto& occ = c.occupied();
  const std::size_t k = occ.size();
  // The bulk build writes straight into the per-index cache slots (skipping
  // any already filled), so a center observer's Def. 2 maximizer scan reuses
  // the peers built here instead of recomputing them, and later per-slot
  // reads are free.  Each slot still holds exactly what view_of_uncached
  // would have produced, bit for bit (fill_all_view_slots_reference below is
  // the oracle).
  derived_geometry& d = c.derived();
  size_view_slots(d, k);
  if (k == 0) return;
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  const double r = std::max(c.sec().radius, 1e-300);
  const double* xs = c.occupied_xs().data();
  const double* ys = c.occupied_ys().data();
  util::thread_pool* pool = geometry_pool();
  // Shared pairwise-distance table: one hypot per unordered pair, mirrored
  // (hypot is sign-symmetric, so the transposed entry is bit-equal to what
  // the per-view computation would produce).  Parallel builds stride rows by
  // shard index -- a fixed assignment balancing the triangle -- and every
  // table element is written by exactly one shard, so the bytes match the
  // sequential build.
  std::vector<double>& dists = d.scratch_dists;
  dists.resize(k * k);
  const auto table_rows = [&](std::size_t row0, std::size_t stride) {
    for (std::size_t i = row0; i < k; i += stride) {
      dists[i * k + i] = 0.0;  // only the diagonal needs zeroing
      geom::kernels::distance_row(xs + i + 1, ys + i + 1, k - i - 1, xs[i],
                                  ys[i], &dists[i * k + i + 1]);
    }
  };
  // Mirror pass, tiled: the naive per-element transpose strides the whole
  // table by k doubles per read and misses cache on every one of them; T*T
  // tiles keep both the source rows and the destination columns resident.
  // Band b owns destination columns [b*T, b*T + T), so every mirrored
  // element is written by exactly one band regardless of sharding.
  constexpr std::size_t mirror_tile = 64;
  const std::size_t bands = (k + mirror_tile - 1) / mirror_tile;
  const auto mirror_bands = [&](std::size_t band0, std::size_t stride) {
    for (std::size_t band = band0; band < bands; band += stride) {
      const std::size_t bi = band * mirror_tile;
      const std::size_t ei = std::min(bi + mirror_tile, k);
      for (std::size_t bj = bi; bj < k; bj += mirror_tile) {
        const std::size_t ej = std::min(bj + mirror_tile, k);
        for (std::size_t i = bi; i < ei; ++i) {
          for (std::size_t j = std::max(bj, i + 1); j < ej; ++j) {
            dists[j * k + i] = dists[i * k + j];
          }
        }
      }
    }
  };
  const std::size_t shards = pool == nullptr ? 1 : std::min<std::size_t>(64, k);
  if (shards <= 1) {
    table_rows(0, 1);
    mirror_bands(0, 1);
  } else {
    pool->parallel_for(shards, [&](std::size_t s) { table_rows(s, shards); });
    const std::size_t band_shards = std::min<std::size_t>(shards, bands);
    pool->parallel_for(band_shards,
                       [&](std::size_t s) { mirror_bands(s, band_shards); });
  }
  // Per-observer pipelines.  Center observers (tolerance-equal to the SEC
  // center: rare) are deferred to a sequential pass -- their Def. 2
  // maximizer scan reads the peers' cache slots, which must all be ready
  // first.  Deferral does not change any slot's bytes: each pipeline depends
  // only on the configuration, never on fill order.
  // The fused record path applies configuration-wide only when every
  // multiplicity is 1 (then the per-target multiplicity expansion is the
  // identity); per-observer it additionally requires snap-identity angles.
  const bool all_mults_one = c.size() == k;
  const auto fill_observer = [&](std::size_t i) {
    if (d.view_ready[i]) return;
    const vec2 p = occ[i].position;
    if (t.same_point(p, center)) return;  // deferred
    thread_local fill_scratch fs;
    const vec2 ref = center - p;
    const double* row = &dists[i * k];
    if (!(all_mults_one &&
          try_view_from_row_fast(p, ref, r, t, xs, ys, row, k, fs,
                                 d.views[i]))) {
      view_from_row_into(c, p, ref, r, t, xs, ys, row, fs, d.views[i]);
    }
    d.view_ready[i] = 1;
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      if (d.view_ready[i] != 0 ||
          t.same_point(occ[i].position, center)) {
        continue;
      }
      GATHER_PROF("config.views");
      fill_observer(i);
    }
  } else {
    // Fixed shard boundaries in observer index space: shard s owns
    // [s*k/S, (s+1)*k/S).  Each slot is written by exactly one shard (the
    // profiling registry is thread-local, so the parallel path skips the
    // per-observer counter).
    const std::size_t obs_shards = std::min<std::size_t>(64, k);
    pool->parallel_for(obs_shards, [&](std::size_t s) {
      const std::size_t b = s * k / obs_shards;
      const std::size_t e = (s + 1) * k / obs_shards;
      for (std::size_t i = b; i < e; ++i) fill_observer(i);
    });
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (d.view_ready[i]) continue;
    const view tmp = view_of_uncached(c, occ[i].position);
    d.views[i].assign(tmp.begin(), tmp.end());
    d.view_ready[i] = 1;
  }
}

void fill_all_view_slots_reference(const configuration& c) {
  const auto& occ = c.occupied();
  const std::size_t k = occ.size();
  // The pre-kernel bulk build, preserved verbatim as the equivalence oracle
  // for fill_all_view_slots (and the baseline of bench_scaling's kernels
  // phase): sequential, per-observer scalar pipeline over the shared
  // pairwise-distance table.
  derived_geometry& d = c.derived();
  size_view_slots(d, k);
  if (k == 0) return;
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  std::vector<double>& dists = d.scratch_dists;
  dists.resize(k * k);
  for (std::size_t i = 0; i < k; ++i)
    dists[i * k + i] = 0.0;  // only the diagonal needs zeroing
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j) {
      const double dd = geom::distance(occ[i].position, occ[j].position);
      dists[i * k + j] = dd;
      dists[j * k + i] = dd;
    }
  for (std::size_t i = 0; i < k; ++i) {
    if (d.view_ready[i]) continue;
    const vec2 p = occ[i].position;
    if (t.same_point(p, center)) {
      // Center observer: Def. 2 maximizer scan; rare, and not helped by
      // the table since it rebuilds views with non-center references.
      const view tmp = view_of_uncached(c, p);
      d.views[i].assign(tmp.begin(), tmp.end());
    } else {
      GATHER_PROF("config.views");
      const double* row = &dists[i * k];
      view_with_reference_into(
          c, p, center - p, [row](std::size_t j) { return row[j]; },
          d.views[i]);
    }
    d.view_ready[i] = 1;
  }
}

std::vector<std::vector<std::size_t>> view_classes_uncached(
    const configuration& c) {
  GATHER_PROF("config.view_classes");
  const std::span<const view> vs = all_views(c);
  const geom::tol& t = c.tolerance();
  const std::size_t nv = vs.size();
  if (nv == 0) return {};
  // Canonical view keys, one lazily materialized column per entry position.
  // The Def. 3 comparator only ever compares same-position entries of two
  // views, so the exact integer ids backing the keys need only distinguish
  // values within one position's column across views.  Each column is
  // chain-clustered like the snapping pass (gap > eps splits; angle columns
  // merge across the 0/2*pi seam), so tolerance-equal values share an id and
  // sorting on the keys is an exact strict weak order -- the tolerance
  // comparator the reference oracle sorts with is not one.  A column is
  // clustered only when the grouping sort first reads it: a generic
  // (asymmetric) configuration decides nearly every comparison within the
  // first few positions, so grouping costs O(nv log nv) id comparisons plus
  // a handful of O(nv log nv) column sorts; fully symmetric configurations
  // degrade gracefully to every column, still O(total entries) sort work.
  const std::size_t len = vs.front().size();  // every view has c.size() entries
  struct col_entry {
    double v;
    std::uint32_t view;
  };
  std::vector<std::uint64_t> ids(nv * len, 0);  // angle id << 32 | dist id
  std::vector<char> ready(len, 0);
  std::vector<col_entry> col(nv);
  std::vector<std::uint32_t> col_cls(nv);
  const auto cluster_column = [&](std::size_t pos, bool angle_axis) {
    for (std::uint32_t v = 0; v < nv; ++v) {
      col[v] = {angle_axis ? vs[v][pos].angle : vs[v][pos].dist, v};
    }
    std::sort(col.begin(), col.end(), [](const col_entry& x, const col_entry& y) {
      return x.v < y.v;
    });
    const double eps = angle_axis ? t.angle_eps : t.rel;
    std::uint32_t id = 0;
    for (std::size_t r = 0; r < nv; ++r) {
      if (r > 0 && col[r].v - col[r - 1].v > eps) ++id;
      col_cls[r] = id;
    }
    // Chain classes touching across the 0/2*pi seam merge, mirroring the
    // snapping pass's seam rule so tolerance-equal angles share an id.
    if (angle_axis && id > 0 &&
        (col.front().v + geom::two_pi) - col.back().v <= eps) {
      for (std::size_t r = nv; r-- > 0 && col_cls[r] == id;) col_cls[r] = 0;
    }
    const int shift = angle_axis ? 32 : 0;
    for (std::size_t r = 0; r < nv; ++r) {
      ids[static_cast<std::size_t>(col[r].view) * len + pos] |=
          static_cast<std::uint64_t>(col_cls[r]) << shift;
    }
  };
  // Three-way lexicographic comparison of two views' key rows, materializing
  // each column on first touch.
  const auto cmp_keys = [&](std::size_t a, std::size_t b) {
    for (std::size_t i = 0; i < len; ++i) {
      if (!ready[i]) {
        cluster_column(i, /*angle_axis=*/true);
        cluster_column(i, /*angle_axis=*/false);
        ready[i] = 1;
      }
      const std::uint64_t ka = ids[a * len + i];
      const std::uint64_t kb = ids[b * len + i];
      if (ka != kb) return ka > kb ? 1 : -1;
    }
    return 0;
  };
  std::vector<std::size_t> order(nv);
  for (std::size_t i = 0; i < nv; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int k3 = cmp_keys(a, b);
    if (k3 != 0) return k3 > 0;  // descending views
    return a < b;                // stable within a class
  });
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t i : order) {
    if (!classes.empty() && cmp_keys(classes.back().front(), i) == 0) {
      classes.back().push_back(i);
    } else {
      classes.push_back({i});
    }
  }
  // Tie verification: every member of a class must compare equal to its
  // front under the Def. 3 tolerance comparison.
  for (const auto& cls : classes) {
    for (std::size_t i : cls) {
      GATHER_CHECK(compare_views(vs[cls.front()], vs[i], t) == 0,
                   "view class members have equal views (Def. 3)");
      static_cast<void>(i);
    }
  }
  return classes;
}

int symmetry_uncached(const configuration& c) {
  GATHER_PROF("config.symmetry");
  const geom::tol& t = c.tolerance();
  const vec2 center = c.sec().center;
  // Degenerate guard: when two or more distinct occupied locations sit
  // inside the tolerance ball around the SEC center, the angular order
  // excludes them all and the string below no longer represents the whole
  // configuration -- fall back to the literal Def. 3 maximum view class.
  std::size_t at_center = 0;
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, center)) ++at_center;
  }
  if (at_center >= 2) return symmetry_by_view_classes(c);
  const std::vector<angular_entry>& entries = angles_about_center_slot(c);
  // Collapse the (multiplicity-expanded) order into distinct locations.
  // Equal positions are bitwise equal after canonicalization and sort
  // adjacently (same snapped theta, same dist, same position).
  struct loc {
    vec2 pos;
    double theta;
    double dist;
    std::uint64_t mult;
  };
  std::vector<loc> locs;
  for (const angular_entry& e : entries) {
    if (!locs.empty() && locs.back().pos == e.position) {
      ++locs.back().mult;
      continue;
    }
    locs.push_back({e.position, e.theta, e.dist, 1});
  }
  const std::size_t m = locs.size();
  // 0 or 1 off-center locations admit only the identity rotation; robots at
  // the center itself are fixed by every rotation and form a singleton view
  // class, so sym(C) = 1 here either way.
  if (m <= 1) return 1;
  // The string about the center: one symbol per location in cyclic clockwise
  // order, encoding (gap to successor, distance ring, multiplicity).  A
  // rotation maps the configuration onto itself iff it shifts this cyclic
  // string onto itself, so sym(C) is the string's rotation order -- computed
  // by the Z/Booth kernel in O(m) after the O(m log m) quantization, instead
  // of the reference oracle's O(n^3 log n) all-views comparison.
  std::vector<double> gaps(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double a = locs[k].theta;
    const double b = locs[(k + 1) % m].theta;
    // Snapped angles make co-ray successors exactly equal; distinct
    // representatives differ by more than angle_eps, so gap class 0 is
    // exactly the co-ray relation.
    gaps[k] = (a == b) ? 0.0 : geom::norm_angle(b - a);
  }
  quantizer qg, qd;
  qg.vals = gaps;
  qg.build(t.angle_eps, /*seam=*/true);
  qd.vals.reserve(m);
  for (const loc& l : locs) qd.vals.push_back(l.dist);
  qd.build(t.len_eps(), /*seam=*/false);
  std::vector<std::uint64_t> symbols(m);
  for (std::size_t k = 0; k < m; ++k) {
    symbols[k] = (static_cast<std::uint64_t>(qg.id_of(gaps[k])) << 42) |
                 (static_cast<std::uint64_t>(qd.id_of(locs[k].dist)) << 21) |
                 locs[k].mult;
  }
  return static_cast<int>(geom::cyclic_rotation_order(symbols));
}

}  // namespace detail

view view_of(const configuration& c, vec2 p) {
  // Serve from the cache only on an exact (bitwise) match with an occupied
  // location: a merely tolerance-close `p` yields a different polar frame and
  // therefore different bits, so it is computed uncached.  occupied() is
  // sorted by position, so the match is a binary search, not a linear scan.
  if (const auto i = c.find_occupied(p)) {
    return cached_view_slot(c, *i);
  }
  return detail::view_of_uncached(c, p);
}

std::span<const view> all_views(const configuration& c) {
  // Serve straight from the slots when every view is already cached;
  // otherwise bulk-build through the shared pairwise-distance table instead
  // of one isolated slot at a time.  The span covers the live prefix of the
  // grow-only slot pool.
  derived_geometry& d = c.derived();
  const std::size_t k = c.distinct_count();
  const bool ready =
      d.view_ready.size() == k &&
      std::find(d.view_ready.begin(), d.view_ready.end(), char{0}) ==
          d.view_ready.end();
  if (!ready) detail::fill_all_view_slots(c);
  return {d.views.data(), k};
}

std::vector<std::vector<std::size_t>> view_classes(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.view_classes) d.view_classes = detail::view_classes_uncached(c);
  return *d.view_classes;
}

int symmetry(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.symmetry) d.symmetry = detail::symmetry_uncached(c);
  return *d.symmetry;
}

}  // namespace gather::config
