#include "config/views.h"

#include "obs/profile.h"

#include <algorithm>
#include <cmath>

#include "config/derived.h"
#include "geometry/angles.h"

namespace gather::config {

namespace {

/// View of `p` using the explicit reference direction `ref` (non-zero).
view view_with_reference(const configuration& c, vec2 p, vec2 ref) {
  const double r = std::max(c.sec().radius, 1e-300);
  view v;
  v.reserve(c.size());
  std::vector<double> raw_angles;
  for (const occupied_point& o : c.occupied()) {
    polar_entry e;
    if (c.tolerance().same_point(o.position, p)) {
      e = {0.0, 0.0};
    } else {
      e.angle = geom::cw_angle(ref, o.position - p);
      e.dist = geom::distance(p, o.position) / r;
      raw_angles.push_back(e.angle);
    }
    for (int k = 0; k < o.multiplicity; ++k) v.push_back(e);
  }
  // Snap angles to cluster representatives so the sort below is exact:
  // co-ray entries share one angle and near-0 noise cannot land at ~2*pi
  // (which would scramble the lexicographic order between twin views).
  const auto reps = geom::cluster_angle_values(std::move(raw_angles),
                                               c.tolerance().angle_eps);
  for (polar_entry& e : v) {
    // dist is exactly 0.0 only for the observer's own entry (set above).
    if (e.dist != 0.0)  // gather-lint: allow(R3)
      e.angle = geom::nearest_angle_rep(e.angle, reps);
  }
  std::sort(v.begin(), v.end(), [](const polar_entry& a, const polar_entry& b) {
    if (a.angle != b.angle) return a.angle < b.angle;
    return a.dist < b.dist;
  });
  return v;
}

}  // namespace

int compare_views(const view& a, const view& b, const geom::tol& t) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Angles on the circle: values within tolerance of each other (including
    // across the 0/2*pi seam) compare equal.
    if (!t.ang_eq_mod(a[i].angle, b[i].angle, geom::two_pi)) {
      return a[i].angle < b[i].angle ? -1 : 1;
    }
    // Distances are normalized by the sec radius, so tolerance is absolute.
    if (std::fabs(a[i].dist - b[i].dist) > t.rel) {
      return a[i].dist < b[i].dist ? -1 : 1;
    }
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

namespace detail {

view view_of_uncached(const configuration& c, vec2 p) {
  GATHER_PROF("config.views");
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  if (!t.same_point(p, center)) {
    return view_with_reference(c, p, center - p);
  }
  // p is the center of the smallest enclosing circle: the reference points at
  // an occupied location x != p maximizing V(x) (Def. 2).  Among maximizers we
  // take the lexicographically greatest resulting view of p, which is
  // well-defined and frame-independent.
  view best_other;
  bool have_other = false;
  std::vector<vec2> maximizers;
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, p)) continue;
    view v = view_with_reference(c, o.position, center - o.position);
    if (!have_other || compare_views(v, best_other, t) > 0) {
      best_other = std::move(v);
      have_other = true;
      maximizers.clear();
      maximizers.push_back(o.position);
    } else if (compare_views(v, best_other, t) == 0) {
      maximizers.push_back(o.position);
    }
  }
  if (!have_other) {
    // Every robot is at p: the trivial view.
    return view(c.size(), polar_entry{0.0, 0.0});
  }
  view best;
  bool have = false;
  for (vec2 x : maximizers) {
    view v = view_with_reference(c, p, x - p);
    if (!have || compare_views(v, best, t) > 0) {
      best = std::move(v);
      have = true;
    }
  }
  return best;
}

std::vector<view> all_views_uncached(const configuration& c) {
  std::vector<view> vs;
  vs.reserve(c.distinct_count());
  for (const occupied_point& o : c.occupied())
    vs.push_back(view_of_uncached(c, o.position));
  return vs;
}

std::vector<std::vector<std::size_t>> view_classes_uncached(
    const configuration& c) {
  const auto vs = all_views(c);
  const geom::tol& t = c.tolerance();
  std::vector<std::size_t> order(vs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return compare_views(vs[a], vs[b], t) > 0;  // descending
  });
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t i : order) {
    if (!classes.empty() &&
        compare_views(vs[classes.back().front()], vs[i], t) == 0) {
      classes.back().push_back(i);
    } else {
      classes.push_back({i});
    }
  }
  return classes;
}

}  // namespace detail

namespace {

/// The cached view slot for occupied index `i`, computing it on first use.
const view& cached_view_slot(const configuration& c, std::size_t i) {
  derived_geometry& d = c.derived();
  const std::size_t k = c.distinct_count();
  if (d.view_ready.size() != k) {
    if (d.views.size() < k) d.views.resize(k);
    d.view_ready.assign(k, 0);
  }
  if (!d.view_ready[i]) {
    d.views[i] = detail::view_of_uncached(c, c.occupied()[i].position);
    d.view_ready[i] = 1;
  }
  return d.views[i];
}

}  // namespace

view view_of(const configuration& c, vec2 p) {
  // Serve from the cache only on an exact (bitwise) match with an occupied
  // location: a merely tolerance-close `p` yields a different polar frame and
  // therefore different bits, so it is computed uncached.
  const auto& occ = c.occupied();
  for (std::size_t i = 0; i < occ.size(); ++i) {
    if (occ[i].position.x == p.x && occ[i].position.y == p.y) {
      return cached_view_slot(c, i);
    }
  }
  return detail::view_of_uncached(c, p);
}

std::vector<view> all_views(const configuration& c) {
  std::vector<view> vs;
  vs.reserve(c.distinct_count());
  for (std::size_t i = 0; i < c.distinct_count(); ++i) {
    vs.push_back(cached_view_slot(c, i));
  }
  return vs;
}

std::vector<std::vector<std::size_t>> view_classes(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.view_classes) d.view_classes = detail::view_classes_uncached(c);
  return *d.view_classes;
}

int symmetry(const configuration& c) {
  int best = 0;
  for (const auto& cls : view_classes(c)) {
    best = std::max(best, static_cast<int>(cls.size()));
  }
  return std::max(best, 1);
}

}  // namespace gather::config
