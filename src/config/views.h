// Views and rotational symmetry (paper, Definitions 2 and 3).
//
// The view of an occupied location p is the multiset of all robot positions
// expressed in a polar frame anchored at p whose reference direction points at
// c = center(sec(U(C))); when p = c itself the reference is chosen to
// maximize the resulting view.  Angles are read *clockwise* (chirality), so
// two locations that are mirror images of each other obtain different views --
// this is how the algorithm breaks axial symmetry (paper, Sec. I).
//
// Views are compared lexicographically under the shared tolerance, and the
// symmetry sym(C) is the size of the largest class of locations with equal
// views (Def. 3).
#pragma once

#include <span>
#include <vector>

#include "config/configuration.h"

namespace gather::config {

/// One robot as seen in a view: clockwise angle from the reference direction
/// in [0, 2*pi) and distance normalized by the radius of sec(U(C)).
/// Robots co-located with the view's origin appear as {0, 0}.
struct polar_entry {
  double angle = 0.0;
  double dist = 0.0;
};

/// A view: polar entries sorted by (angle, dist); one entry per robot
/// (multiplicities expand to repeated entries).
using view = std::vector<polar_entry>;

/// Three-way lexicographic comparison of views under tolerance (-1, 0, +1).
[[nodiscard]] int compare_views(const view& a, const view& b, const geom::tol& t);

/// The view of occupied location `p` of configuration `c` (Def. 2).
/// `p` must be an occupied location.
[[nodiscard]] view view_of(const configuration& c, vec2 p);

/// Views of every occupied location, parallel to `c.occupied()`.  The span
/// aliases the derived-geometry cache (filled in bulk through the shared
/// pairwise-distance table on first use; the backing pool is grow-only, so
/// the span covers its live prefix); it is valid until the next mutation of
/// `c`.  Materialize a `std::vector<view>` from it to keep a snapshot across
/// mutations.
[[nodiscard]] std::span<const view> all_views(const configuration& c);

/// Equivalence classes of occupied locations under equal views; each inner
/// vector holds indices into `c.occupied()`.  Classes are ordered by
/// descending view.
[[nodiscard]] std::vector<std::vector<std::size_t>> view_classes(const configuration& c);

/// sym(C): the cardinality of the largest view class (Def. 3).
[[nodiscard]] int symmetry(const configuration& c);

}  // namespace gather::config
