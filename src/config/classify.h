// Configuration classification (paper, Sec. IV.A).
//
// The five classes {B, M, L (split into L1W/L2W), QR, A} partition the space
// of configurations.  Precedence follows the paper's definitions: bivalent
// first, then unique-maximum-multiplicity, then linear, then quasi-regular,
// and asymmetric for everything else (where sym(C) = 1 is guaranteed).
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string_view>
#include <utility>

#include "config/configuration.h"
#include "util/enum_name.h"

namespace gather::config {

enum class config_class {
  bivalent,       ///< B: n/2 robots at each of exactly two points
  multiple,       ///< M: a unique location of strictly maximal multiplicity
  linear_1w,      ///< L1W: collinear, unique Weber (median) point
  linear_2w,      ///< L2W: collinear, non-degenerate median interval
  quasi_regular,  ///< QR: qreg(C) > 1, not in B/M/L
  asymmetric,     ///< A: everything else; sym(C) = 1
};

}  // namespace gather::config

namespace gather {
template <>
struct enum_descriptor<config::config_class> {
  static constexpr std::array<std::pair<config::config_class, std::string_view>, 6>
      entries{{{config::config_class::bivalent, "B"},
               {config::config_class::multiple, "M"},
               {config::config_class::linear_1w, "L1W"},
               {config::config_class::linear_2w, "L2W"},
               {config::config_class::quasi_regular, "QR"},
               {config::config_class::asymmetric, "A"}}};
};
}  // namespace gather

namespace gather::config {

[[nodiscard]] constexpr std::string_view to_string(config_class c) {
  return enum_name(c);
}
std::ostream& operator<<(std::ostream& os, config_class c);

/// Classification result: the class and the data the gathering algorithm
/// reuses (computed once here so callers need not recompute it).
struct classification {
  config_class cls = config_class::asymmetric;
  /// M: the unique maximum-multiplicity point.  QR/L1W: the Weber point.
  /// Unset for B, L2W and A (the A-case election needs views; see core).
  std::optional<vec2> target;
  /// QR only: the quasi-regularity degree.
  int qreg_degree = 1;
};

/// Classify `c` per Sec. IV.A.  Precondition: `c` is non-empty.
[[nodiscard]] classification classify(const configuration& c);

}  // namespace gather::config
