// Weber points (paper, Sec. III).
//
// The Weber point of a configuration minimizes the sum of distances to all
// robots.  Non-linear configurations have a unique Weber point; linear ones
// have the median interval [min Med(C), max Med(C)] (possibly a single
// point).  The Weber point is not computable exactly for arbitrary point
// sets, but the paper shows it *is* computable for quasi-regular
// configurations (Lemma 3.3: it equals the center of quasi-regularity) and
// for linear configurations (the median).  A Weiszfeld iteration is provided
// as a numerical fallback and as ground truth for validation benchmarks.
#pragma once

#include <optional>

#include "config/configuration.h"

namespace gather::config {

struct weber_result {
  bool unique = false;  ///< true when the Weber point is a single point
  bool exact = false;   ///< true when computed by a closed-form/discrete rule
  vec2 point;           ///< the Weber point (or the interval midpoint if not unique)
  vec2 lo;              ///< linear configurations: interval endpoints
  vec2 hi;              ///< (lo == hi == point when unique)
};

/// Geometric median by damped Weiszfeld iteration with the Vardi-Zhang
/// correction at data points.  Returns nullopt for empty configurations.
/// The default iteration budget is modest because a Newton polish phase
/// (quadratic convergence) follows the Weiszfeld loop.
[[nodiscard]] std::optional<vec2> geometric_median_weiszfeld(const configuration& c,
                                                             int max_iters = 200,
                                                             double rel_tol = 1e-13);

/// Median interval of a linear configuration (the Weber set).  Precondition:
/// `c.is_linear()` and `c` is non-empty.
[[nodiscard]] weber_result linear_weber(const configuration& c);

/// Weber point of `c`: exact for linear and quasi-regular configurations,
/// Weiszfeld-approximated otherwise (`exact == false`).
[[nodiscard]] weber_result weber_point(const configuration& c);

}  // namespace gather::config
