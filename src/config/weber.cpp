#include "config/weber.h"

#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "config/derived.h"
#include "config/regularity.h"
#include "geometry/angles.h"
#include "geometry/convex_hull.h"
#include "geometry/predicates.h"

namespace gather::config {

namespace {

/// Fermat point of three unweighted, non-collinear points: the vertex when
/// some angle is >= 120 degrees, otherwise the intersection of the two
/// Simpson lines (vertex to apex of the outward equilateral triangle on the
/// opposite side).
std::optional<vec2> fermat_point(vec2 a, vec2 b, vec2 c, const geom::tol& t) {
  const vec2 v[3] = {a, b, c};
  for (int i = 0; i < 3; ++i) {
    const vec2 p = v[i], q = v[(i + 1) % 3], r = v[(i + 2) % 3];
    const double ang = geom::angular_separation(q - p, r - p);
    if (ang >= 2.0 * geom::pi / 3.0 - 1e-12) return p;
  }
  // Apex of the equilateral triangle erected on (q, r) away from p.
  const auto apex_opposite = [&](vec2 p, vec2 q, vec2 r) {
    const vec2 cand1 = geom::rotated_ccw_about(r, q, geom::pi / 3.0);
    const vec2 cand2 = geom::rotated_cw_about(r, q, geom::pi / 3.0);
    return geom::distance(cand1, p) > geom::distance(cand2, p) ? cand1 : cand2;
  };
  const vec2 apex_a = apex_opposite(a, b, c);
  const vec2 apex_b = apex_opposite(b, c, a);
  return geom::line_intersection(a, apex_a, b, apex_b, t);
}

/// Exact Weber point for three or four unweighted points (non-linear
/// configurations): the Fermat point, the diagonal intersection of a convex
/// quadrilateral, or the interior point of a non-convex one.
std::optional<vec2> small_case_weber(const configuration& c) {
  if (c.is_linear()) return std::nullopt;
  const auto& occ = c.occupied();
  for (const occupied_point& o : occ) {
    if (o.multiplicity != 1) return std::nullopt;  // weighted: no closed form
  }
  const geom::tol& t = c.tolerance();
  if (occ.size() == 3) {
    return fermat_point(occ[0].position, occ[1].position, occ[2].position, t);
  }
  if (occ.size() == 4) {
    std::vector<vec2> pts;
    for (const occupied_point& o : occ) pts.push_back(o.position);
    // The cached hull is computed over the same distinct points in the same
    // (sorted occupied) order, so it is bit-identical to a local computation.
    const auto hull = config::hull(c);
    if (hull.size() == 4) {
      return geom::line_intersection(hull[0], hull[2], hull[1], hull[3], t);
    }
    if (hull.size() == 3) {
      // The point not on the hull minimizes the sum of distances.
      for (const vec2& p : pts) {
        if (!geom::is_hull_vertex(p, pts, t)) return p;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<vec2> geometric_median_weiszfeld(const configuration& c, int max_iters,
                                               double rel_tol) {
  GATHER_PROF("config.weber.weiszfeld");
  if (c.empty()) return std::nullopt;
  if (c.is_gathered()) return c.occupied().front().position;
  if (auto exact = small_case_weber(c)) return exact;

  // A data point a is the geometric median iff the pull of the other robots
  // does not exceed a's own weight: |sum_{p != a} w_p (p-a)/|p-a|| <= w_a
  // (the subgradient optimality condition).  Checking this first handles
  // every kink optimum exactly -- smooth iterations cannot converge onto a
  // kink at full speed.
  for (const occupied_point& a : c.occupied()) {
    vec2 pull{};
    for (const occupied_point& o : c.occupied()) {
      const double d = geom::distance(a.position, o.position);
      // Exact-zero guard against division by zero, not a proximity test.
      if (d == 0.0) continue;  // gather-lint: allow(R3)
      pull += (o.multiplicity / d) * (o.position - a.position);
    }
    if (geom::norm(pull) <= static_cast<double>(a.multiplicity)) {
      return a.position;
    }
  }

  // Start from the centroid.
  vec2 y{};
  for (const occupied_point& o : c.occupied()) {
    y += static_cast<double>(o.multiplicity) * o.position;
  }
  y = y / static_cast<double>(c.size());

  const double step_tol = rel_tol * std::max(c.diameter(), 1e-300);
  const double near = 1e-14 * std::max(c.diameter(), 1e-300);
  for (int it = 0; it < max_iters; ++it) {
    // Weighted update over robots not coincident with the iterate.
    vec2 num{};
    double den = 0.0;
    vec2 pull{};      // R(y) = sum (p - y) / |p - y|
    int weight_at_y = 0;
    for (const occupied_point& o : c.occupied()) {
      const double d = geom::distance(y, o.position);
      if (d <= near) {
        weight_at_y += o.multiplicity;
        continue;
      }
      const double w = o.multiplicity / d;
      num += w * o.position;
      den += w;
      pull += w * (o.position - y);
    }
    // Exact zero only when every robot sits at y; guards the division below.
    if (den == 0.0) return y;  // gather-lint: allow(R3)
    const vec2 t_y = num / den;
    vec2 next;
    if (weight_at_y > 0) {
      // Vardi-Zhang: if the anchoring weight dominates the pull, y is optimal.
      const double r = geom::norm(pull);
      if (r <= static_cast<double>(weight_at_y)) return y;
      const double beta = static_cast<double>(weight_at_y) / r;
      next = (1.0 - beta) * t_y + beta * y;
    } else {
      next = t_y;  // plain Weiszfeld: monotone convergence to the optimum
    }
    if (geom::distance(next, y) <= step_tol) {
      y = next;
      break;
    }
    y = next;
  }

  // Newton polish: the objective is smooth away from data points and Newton
  // converges quadratically, pushing the residual towards machine precision.
  // This matters for quasi-regularity detection, where the angular structure
  // around the candidate center is verified against a 1e-9 tolerance.
  for (int it = 0; it < 30; ++it) {
    vec2 grad{};
    double hxx = 0.0, hxy = 0.0, hyy = 0.0;
    bool at_data_point = false;
    for (const occupied_point& o : c.occupied()) {
      const vec2 d = y - o.position;
      const double r = geom::norm(d);
      if (r <= near) {
        at_data_point = true;
        break;
      }
      const double w = o.multiplicity;
      grad += (w / r) * d;
      const double r3 = r * r * r;
      hxx += w * (1.0 / r - d.x * d.x / r3);
      hxy += w * (-d.x * d.y / r3);
      hyy += w * (1.0 / r - d.y * d.y / r3);
    }
    if (at_data_point) break;
    const double det = hxx * hyy - hxy * hxy;
    if (!(det > 0.0)) break;  // not positive definite: stop polishing
    const vec2 step{(hyy * grad.x - hxy * grad.y) / det,
                    (hxx * grad.y - hxy * grad.x) / det};
    const vec2 next = y - step;
    // Reject wild steps (far from the Weiszfeld basin).
    if (geom::distance(next, y) > 0.1 * std::max(c.diameter(), 1e-300)) break;
    y = next;
    if (geom::norm(step) <= 1e-16 * std::max(c.diameter(), 1e-300)) break;
  }
  return y;
}

namespace detail {

weber_result linear_weber_uncached(const configuration& c) {
  weber_result res;
  if (c.is_gathered()) {
    res.unique = true;
    res.exact = true;
    res.point = res.lo = res.hi = c.occupied().front().position;
    return res;
  }
  // Direction of the common line: the farthest occupied pair.
  vec2 a = c.occupied().front().position;
  vec2 b = a;
  double best = -1.0;
  for (const occupied_point& o : c.occupied()) {
    const double d = geom::distance(a, o.position);
    if (d > best) {
      best = d;
      b = o.position;
    }
  }
  const vec2 dir = geom::normalized(b - a);

  std::vector<double> params;
  params.reserve(c.size());
  for (const occupied_point& o : c.occupied()) {
    const double s = dot(o.position - a, dir);
    for (int k = 0; k < o.multiplicity; ++k) params.push_back(s);
  }
  std::sort(params.begin(), params.end());
  const std::size_t n = params.size();
  double lo_s, hi_s;
  if (n % 2 == 1) {
    lo_s = hi_s = params[n / 2];
  } else {
    lo_s = params[n / 2 - 1];
    hi_s = params[n / 2];
  }
  res.exact = true;
  res.lo = a + lo_s * dir;
  res.hi = a + hi_s * dir;
  res.point = geom::midpoint(res.lo, res.hi);
  res.unique = c.tolerance().same_point(res.lo, res.hi);
  if (res.unique) res.point = res.lo;
  return res;
}

weber_result weber_point_uncached(const configuration& c) {
  GATHER_PROF("config.weber");
  if (c.is_linear()) return linear_weber(c);
  weber_result res;
  res.unique = true;  // non-linear configurations have a unique Weber point
  if (auto qr = detect_quasi_regularity(c)) {
    res.exact = true;
    res.point = res.lo = res.hi = qr->center;
    return res;
  }
  res.exact = false;
  res.point = res.lo = res.hi = geometric_median_weiszfeld(c).value();
  return res;
}

}  // namespace detail

weber_result linear_weber(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.linear_weber) d.linear_weber = detail::linear_weber_uncached(c);
  return *d.linear_weber;
}

weber_result weber_point(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.weber) d.weber = detail::weber_point_uncached(c);
  return *d.weber;
}

}  // namespace gather::config
