// Clockwise successor ordering and the string of angles (paper, Def. 4).
//
// Given a candidate center c, the robots not located at c are arranged in a
// cyclic clockwise order: primarily by the clockwise angle of their ray from
// c, robots on the same ray ordered by increasing distance, and co-located
// robots adjacent.  The string of angles SA(c) lists the clockwise angle
// between each robot and its successor; its periodicity per(SA) quantifies the
// rotational regularity of the configuration about c (Def. 5).
#pragma once

#include <vector>

#include "config/configuration.h"

namespace gather::config {

/// One robot in the cyclic order around a center.
struct angular_entry {
  vec2 position;
  double theta = 0.0;  ///< clockwise angle of the ray from the center, in [0, 2*pi)
  double dist = 0.0;   ///< distance from the center
};

/// The robots of `c` not located at `center`, sorted in the cyclic clockwise
/// successor order of Def. 4 (by theta, then by distance; multiplicities
/// expand to adjacent duplicates).  The angular origin is arbitrary but fixed,
/// which is irrelevant for cyclic properties.
[[nodiscard]] std::vector<angular_entry> angular_order(const configuration& c, vec2 center);

/// SA(center): clockwise angles between cyclically consecutive robots of the
/// angular order; entries sum to 2*pi (or the string is empty/singleton for
/// degenerate inputs).  Size is n - mult(center).
[[nodiscard]] std::vector<double> string_of_angles(const configuration& c, vec2 center);

/// per(SA): the greatest k such that SA = x^k for some block x (equivalently,
/// the greatest divisor k of |SA| such that SA is invariant under cyclic shift
/// by |SA|/k), compared under the angle tolerance.  Strings of size < 2 have
/// periodicity 1.
[[nodiscard]] int periodicity(const std::vector<double>& sa, const geom::tol& t);

/// reg(C) about an explicit center: per(SA(center)), or 1 when fewer than two
/// robots lie off-center (Def. 5 restricted to a known center).
[[nodiscard]] int regularity_about(const configuration& c, vec2 center);

}  // namespace gather::config
