#include "config/classify.h"

#include <ostream>

#include "config/derived.h"
#include "config/regularity.h"
#include "obs/profile.h"
#include "config/weber.h"

namespace gather::config {

std::ostream& operator<<(std::ostream& os, config_class c) {
  return os << to_string(c);
}

namespace detail {

classification classify_uncached(const configuration& c) {
  GATHER_PROF("config.classify");
  classification out;

  // B: exactly two occupied points, each with multiplicity n/2.
  if (c.distinct_count() == 2 &&
      c.occupied()[0].multiplicity == c.occupied()[1].multiplicity) {
    out.cls = config_class::bivalent;
    return out;
  }

  // M: a unique location of strictly maximal multiplicity.
  {
    int best = -1, second = -1;
    vec2 best_pos{};
    for (const occupied_point& o : c.occupied()) {
      if (o.multiplicity > best) {
        second = best;
        best = o.multiplicity;
        best_pos = o.position;
      } else if (o.multiplicity > second) {
        second = o.multiplicity;
      }
    }
    if (best > second) {
      out.cls = config_class::multiple;
      out.target = best_pos;
      return out;
    }
  }

  // L: collinear, split by Weber point uniqueness.
  if (c.is_linear()) {
    const weber_result w = linear_weber(c);
    out.cls = w.unique ? config_class::linear_1w : config_class::linear_2w;
    if (w.unique) out.target = w.point;
    return out;
  }

  // QR: quasi-regular (Theorem 3.1 detector); the center is the Weber point
  // (Lemma 3.3).
  if (auto qr = detect_quasi_regularity(c)) {
    out.cls = config_class::quasi_regular;
    out.target = qr->center;
    out.qreg_degree = qr->degree;
    return out;
  }

  // A: the rest; the paper shows sym(C) = 1 here.
  out.cls = config_class::asymmetric;
  return out;
}

}  // namespace detail

classification classify(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.verdict) d.verdict = detail::classify_uncached(c);
  return *d.verdict;
}

}  // namespace gather::config
