// Regularity and quasi-regularity detection (paper, Definitions 5-7,
// Lemma 3.4, Theorem 3.1).
//
// A configuration is *regular* about a center c when its string of angles
// around c is periodic with period m > 1 (Def. 5).  It is *quasi-regular*
// (Def. 6) when a regular configuration can be obtained from it by moving
// only robots located at c outward onto rays.  Lemma 3.4 reduces detection
// for an occupied candidate center p to a counting argument: group the rays
// from p into rotation classes modulo 2*pi/m; each class needs
// m * max_ray_load - total_class_load fill-in robots, and the total deficit
// must not exceed mult(p).
//
// Candidate centers enumerated by the detector:
//   1. every occupied location (deficit test of Lemma 3.4),
//   2. the center of sec(U(C)) -- covers every configuration with
//      sym(C) > 1 (Lemma 3.1), which is what the gathering proof requires,
//   3. the geometric median refined by Weiszfeld iteration -- by Lemma 3.3
//      the center of quasi-regularity of a non-linear configuration *is* the
//      Weber point, so verifying angular periodicity about the converged
//      median catches regular configurations whose center is unoccupied and
//      distinct from the sec center (e.g. non-equidistant biangular sets).
#pragma once

#include <optional>

#include "config/configuration.h"

namespace gather::config {

/// Result of quasi-regularity detection.
struct quasi_regularity {
  vec2 center;    ///< CQR(C), the center of quasi-regularity
  int degree = 1; ///< qreg(C) > 1
};

/// Lemma 3.4 deficit test: is `c` quasi-regular about the *occupied* point
/// `p` with some degree m > 1?  Returns the largest such m, or nullopt.
[[nodiscard]] std::optional<int> quasi_regular_about_occupied(const configuration& c,
                                                              vec2 p);

/// Full detector (Theorem 3.1): returns the center and degree of
/// quasi-regularity when qreg(C) > 1, nullopt otherwise.  Configurations with
/// fewer than three robots off any candidate center are never reported.
[[nodiscard]] std::optional<quasi_regularity> detect_quasi_regularity(
    const configuration& c);

}  // namespace gather::config
