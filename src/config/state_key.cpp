#include "config/state_key.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <numeric>

#include "config/string_of_angles.h"
#include "geometry/angles.h"
#include "geometry/cyclic.h"

namespace gather::config {

namespace {

// 2^36 buckets per unit: ~1.5e-11 per bucket.  Two tolerance-equal values
// (clustered below) land in the same bucket unless they straddle a bucket
// edge, which needs their shared cluster mean to sit within round-off noise
// (~1e-15) of an edge -- see the straddling caveat in docs/CHECKING.md.
constexpr double quantum_per_unit = 68719476736.0;

/// splitmix64 finalizer: the standard well-mixing 64-bit permutation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One 64-bit symbol from a location's (gap, dist, mult, crashed) tuple.
/// Order-dependent chaining keeps e.g. (a, b) and (b, a) distinct.
std::uint64_t mix_symbol(std::uint64_t gap_q, std::uint64_t dist_q,
                         std::uint64_t mult, std::uint64_t crashed) {
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  h = mix64(h ^ gap_q);
  h = mix64(h ^ dist_q);
  h = mix64(h ^ mult);
  h = mix64(h ^ crashed);
  return h;
}

/// Snap every value to the mean of its chain-cluster: sort, split where an
/// adjacent gap exceeds `eps`, replace members by the cluster mean.  The same
/// clustering rule the view pipeline's quantizer uses, so two states whose
/// values differ only by round-off noise produce identical snapped values.
void snap_to_cluster_means(std::vector<double>& vals, double eps) {
  const std::size_t n = vals.size();
  if (n < 2) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = begin + 1;
    double sum = vals[order[begin]];
    while (end < n && vals[order[end]] - vals[order[end - 1]] <= eps) {
      sum += vals[order[end]];
      ++end;
    }
    const double rep = sum / static_cast<double>(end - begin);
    for (std::size_t i = begin; i < end; ++i) vals[order[i]] = rep;
    begin = end;
  }
}

}  // namespace

std::size_t state_key_hash::operator()(const state_key& k) const noexcept {
  std::uint64_t h = 0x853c49e6748fea9bull;
  for (std::uint64_t w : k.words) h = mix64(h ^ w);
  return static_cast<std::size_t>(h);
}

std::uint64_t quantize_scale_free(double v) {
  return static_cast<std::uint64_t>(std::llround(v * quantum_per_unit));
}

state_key canonical_state_key(const configuration& c,
                              std::span<const std::uint8_t> live) {
  const std::size_t n = c.size();
  const geom::tol& t = c.tolerance();

  // Fold per-robot liveness into per-occupied-location crash counts.
  std::vector<std::uint64_t> crashed_at(c.occupied().size(), 0);
  std::uint64_t total_crashed = 0;
  if (!live.empty()) {
    for (std::size_t i = 0; i < n && i < live.size(); ++i) {
      if (live[i]) continue;
      ++total_crashed;
      if (const auto idx = c.find_occupied(c.robots()[i])) ++crashed_at[*idx];
    }
  }

  // Walk the distinct off-center locations in the clockwise successor order
  // (Def. 4); collapse the multiplicity-expanded entries back to locations.
  const vec2 center = c.sec().center;
  const double radius = c.sec().radius > 0.0 ? c.sec().radius : 1.0;
  const auto order = angular_order(c, center);
  struct ring_loc {
    double theta = 0.0;
    double dist = 0.0;
    std::uint64_t mult = 0;
    std::uint64_t crashed = 0;
  };
  std::vector<ring_loc> ring;
  ring.reserve(order.size());
  vec2 last{};
  bool have_last = false;
  for (const angular_entry& e : order) {
    if (have_last && e.position == last) {
      ++ring.back().mult;
      continue;
    }
    ring_loc loc;
    loc.theta = e.theta;
    loc.dist = e.dist / radius;
    loc.mult = 1;
    if (const auto idx = c.find_occupied(e.position)) loc.crashed = crashed_at[*idx];
    ring.push_back(loc);
    last = e.position;
    have_last = true;
  }

  std::uint64_t ring_mult = 0;
  std::uint64_t ring_crashed = 0;
  for (const ring_loc& loc : ring) {
    ring_mult += loc.mult;
    ring_crashed += loc.crashed;
  }
  const std::uint64_t center_mult = static_cast<std::uint64_t>(n) - ring_mult;
  const std::uint64_t center_crashed = total_crashed - ring_crashed;

  // Cyclic gaps between consecutive locations (exactly 0 on a shared ray,
  // because angular_order snapped thetas to cluster representatives), then
  // tolerance-cluster gaps and normalized radii before bucketing, so two
  // similar states quantize identically.
  const std::size_t m = ring.size();
  std::vector<double> gaps(m, 0.0);
  std::vector<double> dists(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const double next_theta = ring[(j + 1) % m].theta;
    gaps[j] = (next_theta == ring[j].theta)
                  ? 0.0
                  : geom::norm_angle(next_theta - ring[j].theta);
    dists[j] = ring[j].dist;
  }
  if (m == 1) gaps[0] = geom::two_pi;
  snap_to_cluster_means(gaps, t.angle_eps);
  snap_to_cluster_means(dists, t.rel);

  std::vector<std::uint64_t> symbols(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    symbols[j] = mix_symbol(quantize_scale_free(gaps[j]),
                            quantize_scale_free(dists[j]), ring[j].mult,
                            ring[j].crashed);
  }
  const std::vector<std::uint64_t> canon = geom::canonical_rotation(symbols);

  state_key k;
  k.words.reserve(5 + canon.size());
  k.words.push_back(static_cast<std::uint64_t>(n));
  k.words.push_back(static_cast<std::uint64_t>(c.distinct_count()));
  k.words.push_back(center_mult);
  k.words.push_back(center_crashed);
  k.words.push_back(static_cast<std::uint64_t>(m));
  k.words.insert(k.words.end(), canon.begin(), canon.end());
  return k;
}

state_key raw_state_key(const configuration& c,
                        std::span<const std::uint8_t> live) {
  const std::vector<vec2>& robots = c.robots();
  std::vector<std::array<std::uint64_t, 3>> triples;
  triples.reserve(robots.size());
  for (std::size_t i = 0; i < robots.size(); ++i) {
    const std::uint64_t alive =
        live.empty() || (i < live.size() && live[i]) ? 1 : 0;
    triples.push_back({std::bit_cast<std::uint64_t>(robots[i].x),
                       std::bit_cast<std::uint64_t>(robots[i].y), alive});
  }
  std::sort(triples.begin(), triples.end());
  state_key k;
  k.words.reserve(1 + 3 * triples.size());
  k.words.push_back(static_cast<std::uint64_t>(robots.size()));
  for (const auto& tr : triples) {
    k.words.insert(k.words.end(), tr.begin(), tr.end());
  }
  return k;
}

}  // namespace gather::config
