#include "config/safe_points.h"

#include <algorithm>

#include "config/derived.h"
#include "config/string_of_angles.h"

namespace gather::config {

int max_ray_load(const configuration& c, vec2 p) {
  // angular_order clusters robots not at p by ray direction (snapped
  // angles); for occupied p the order is served from the shared polar table
  // (safe_occupied_points and quasi-regularity read the same slots).
  int best = 0;
  int run = 0;
  double run_theta = -1.0;
  bool first = true;
  for (const angular_entry& e : angular_order_ref(c, p)) {
    if (first || e.theta != run_theta) {
      run = 1;
      run_theta = e.theta;
      first = false;
    } else {
      ++run;
    }
    best = std::max(best, run);
  }
  return best;
}

bool is_safe_point(const configuration& c, vec2 p) {
  const int n = static_cast<int>(c.size());
  const int bound = (n + 1) / 2 - 1;  // ceil(n/2) - 1
  return max_ray_load(c, p) <= bound;
}

namespace detail {

std::vector<std::size_t> safe_occupied_points_uncached(const configuration& c) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < c.occupied().size(); ++i) {
    if (is_safe_point(c, c.occupied()[i].position)) out.push_back(i);
  }
  return out;
}

}  // namespace detail

std::vector<std::size_t> safe_occupied_points(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.safe_points) d.safe_points = detail::safe_occupied_points_uncached(c);
  return *d.safe_points;
}

}  // namespace gather::config
