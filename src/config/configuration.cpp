#include "config/configuration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "config/derived.h"
#include "geometry/exact.h"
#include "util/check.h"

namespace gather::config {

namespace {

// U(C) sizes up to this use the legacy all-pairs diameter loop; larger
// configurations go through the exact convex hull first (identical value:
// the diametral pair are always hull vertices).
constexpr std::size_t kDiameterHullThreshold = 64;

// The delta path gives up when the movers outnumber this bound -- past it
// the sorted-array repair approaches the cost of a straight rebuild.
[[nodiscard]] std::size_t delta_mover_cap(std::size_t u) {
  return std::max<std::size_t>(8, u / 16);
}

[[nodiscard]] bool same_bits(vec2 a, vec2 b) {
  return a.x == b.x && a.y == b.y;
}

[[nodiscard]] bool same_tol_bits(const geom::tol& a, const geom::tol& b) {
  return a.scale == b.scale && a.rel == b.rel && a.angle_eps == b.angle_eps &&
         a.abs_floor == b.abs_floor;
}

[[nodiscard]] bool occupied_less(const occupied_point& o, vec2 q) {
  return o.position < q;
}

// Exact convex hull: Andrew monotone chain over the lex-sorted distinct
// positions, strict turns by geom::exact_orientation.  Collinear boundary
// points are dropped -- only extreme points remain, which is all the
// diameter needs.
void exact_hull_of_sorted(std::span<const vec2> pts, std::vector<vec2>& out) {
  out.clear();
  const std::size_t n = pts.size();
  if (n <= 2) {
    out.assign(pts.begin(), pts.end());
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (out.size() >= 2 &&
           geom::exact_orientation(out[out.size() - 2], out.back(), pts[i]) <=
               0) {
      out.pop_back();
    }
    out.push_back(pts[i]);
  }
  const std::size_t lower = out.size() + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (out.size() >= lower &&
           geom::exact_orientation(out[out.size() - 2], out.back(), pts[i]) <=
               0) {
      out.pop_back();
    }
    out.push_back(pts[i]);
  }
  out.pop_back();  // the chain closes back at pts[0], already present
}

// Strictly inside the CCW hull: positive exact orientation against every
// edge.  Degenerate hulls (fewer than three vertices) have no interior.
[[nodiscard]] bool strictly_inside_hull(const std::vector<vec2>& hull,
                                        vec2 p) {
  const std::size_t m = hull.size();
  if (m < 3) return false;
  for (std::size_t j = 0; j < m; ++j) {
    if (geom::exact_orientation(hull[j], hull[(j + 1) % m], p) <= 0) {
      return false;
    }
  }
  return true;
}

void make_no_op(mutation_report& rep) {
  rep.kind = mutation_kind::no_op;
  rep.no_op = true;
  rep.cache_kept = true;
  rep.structure_changed = false;
}

}  // namespace

configuration::configuration() = default;
configuration::~configuration() = default;

configuration::configuration(configuration&& other) noexcept = default;
configuration& configuration::operator=(configuration&& other) noexcept =
    default;

configuration::configuration(const configuration& other)
    : input_(other.input_),
      robots_(other.robots_),
      occupied_(other.occupied_),
      occ_xs_(other.occ_xs_),
      occ_ys_(other.occ_ys_),
      tol_(other.tol_),
      cluster_tol_(other.cluster_tol_),
      sec_(other.sec_),
      diameter_(other.diameter_),
      linear_(other.linear_),
      policy_(other.policy_),
      refresh_floor_(other.refresh_floor_),
      generation_(other.generation_),
      occupied_grid_(other.occupied_grid_),
      bounds_(other.bounds_),
      sec_violator_(other.sec_violator_),
      collinear_witness_(other.collinear_witness_),
      diam_hull_(other.diam_hull_) {}

configuration& configuration::operator=(const configuration& other) {
  if (this == &other) return *this;
  input_ = other.input_;
  robots_ = other.robots_;
  occupied_ = other.occupied_;
  occ_xs_ = other.occ_xs_;
  occ_ys_ = other.occ_ys_;
  tol_ = other.tol_;
  cluster_tol_ = other.cluster_tol_;
  sec_ = other.sec_;
  diameter_ = other.diameter_;
  linear_ = other.linear_;
  policy_ = other.policy_;
  refresh_floor_ = other.refresh_floor_;
  generation_ = other.generation_;
  occupied_grid_ = other.occupied_grid_;
  bounds_ = other.bounds_;
  sec_violator_ = other.sec_violator_;
  collinear_witness_ = other.collinear_witness_;
  diam_hull_ = other.diam_hull_;
  if (derived_) derived_->clear();  // cold cache; recomputed on demand
  return *this;
}

configuration::configuration(std::vector<vec2> robots)
    : input_(std::move(robots)) {
  refresh_tol();
  cluster_and_sort();
  derive_scalars();
}

configuration::configuration(std::vector<vec2> robots, geom::tol t)
    : input_(std::move(robots)), tol_(t), policy_(tol_policy::fixed) {
  cluster_and_sort();
  derive_scalars();
}

void configuration::recompute_bounds() {
  // Bitwise mirror of geom::tol::for_points: the delta path reasons about
  // the refreshed tolerance through these bounds (see input_bounds).
  input_bounds b;
  bool first = true;
  for (const vec2& p : input_) {
    if (first) {
      b.lo_x = b.hi_x = p.x;
      b.lo_y = b.hi_y = p.y;
      first = false;
    } else {
      b.lo_x = std::min(b.lo_x, p.x);
      b.hi_x = std::max(b.hi_x, p.x);
      b.lo_y = std::min(b.lo_y, p.y);
      b.hi_y = std::max(b.hi_y, p.y);
    }
    b.mag = std::max({b.mag, std::fabs(p.x), std::fabs(p.y)});
  }
  b.valid = !input_.empty();
  bounds_ = b;
}

geom::tol configuration::tol_from_bounds() const {
  geom::tol t;
  t.scale =
      std::max({bounds_.hi_x - bounds_.lo_x, bounds_.hi_y - bounds_.lo_y,
                1e-12});
  t.abs_floor = 1e-12 * std::max(bounds_.mag, 1e-300);
  return t;
}

void configuration::refresh_tol() {
  switch (policy_) {
    case tol_policy::spread_scaled:
      recompute_bounds();
      tol_ = tol_from_bounds();
      break;
    case tol_policy::fixed:
      break;  // the explicit tolerance is carried unchanged
    case tol_policy::refreshed:
      recompute_bounds();
      tol_ = tol_from_bounds();
      tol_.abs_floor = std::max(tol_.abs_floor, refresh_floor_);
      break;
  }
}

void configuration::cluster_and_sort() {
  cluster_tol_ = tol_;
  robots_ = input_;
  // Greedy clustering: a point joins the first (lowest creation index)
  // cluster whose running representative is within tolerance.  The grid
  // serves that query in O(1) expected: cluster c's entry handle is c
  // (sequential inserts into a reset grid), and min_handle_match returns the
  // smallest matching handle -- exactly the legacy first-match scan.
  std::vector<cluster>& clusters = scratch_clusters_;
  std::vector<std::size_t>& assignment = scratch_assign_;
  clusters.clear();
  assignment.resize(robots_.size());
  geom::spatial_grid& grid = scratch_cluster_grid_;
  grid.reset(2.0 * cluster_tol_.len_eps());
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    const vec2 p = robots_[i];
    const std::size_t c = grid.min_handle_match(p, cluster_tol_);
    if (c != geom::spatial_grid::npos) {
      clusters[c].sum += p;
      clusters[c].count += 1;
      assignment[i] = c;
      grid.move(c, clusters[c].centroid());
    } else {
      assignment[i] = clusters.size();
      clusters.push_back({p, 1});
      (void)grid.insert(p);
    }
  }
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    robots_[i] = clusters[assignment[i]].centroid();
  }

  occupied_.clear();
  occupied_.reserve(clusters.size());
  for (const cluster& c : clusters) {
    occupied_.push_back({c.centroid(), c.count});
  }
  std::sort(occupied_.begin(), occupied_.end(),
            [](const occupied_point& a, const occupied_point& b) {
              return a.position < b.position;
            });

  std::vector<vec2>& distinct = scratch_distinct_;
  distinct.clear();
  distinct.reserve(occupied_.size());
  for (const occupied_point& o : occupied_) distinct.push_back(o.position);

  occ_xs_.resize(occupied_.size());
  occ_ys_.resize(occupied_.size());
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    occ_xs_[i] = occupied_[i].position.x;
    occ_ys_[i] = occupied_[i].position.y;
  }
}

void configuration::compute_diameter_and_hull() {
  diameter_ = 0.0;
  const std::size_t u = occupied_.size();
  if (u <= kDiameterHullThreshold) {
    diam_hull_.clear();
    for (std::size_t i = 0; i < u; ++i) {
      for (std::size_t j = i + 1; j < u; ++j) {
        diameter_ = std::max(diameter_, geom::distance(occupied_[i].position,
                                                       occupied_[j].position));
      }
    }
    return;
  }
  // Same value through the hull: the farthest pair are extreme points, and
  // max over a superset-covering subset of the same distances is the same
  // double.
  GATHER_CHECK(scratch_distinct_.size() == u, "distinct mirrors occupied");
  exact_hull_of_sorted(scratch_distinct_, diam_hull_);
  for (std::size_t i = 0; i < diam_hull_.size(); ++i) {
    for (std::size_t j = i + 1; j < diam_hull_.size(); ++j) {
      diameter_ =
          std::max(diameter_, geom::distance(diam_hull_[i], diam_hull_[j]));
    }
  }
}

void configuration::derive_scalars() {
  compute_diameter_and_hull();
  if (policy_ == tol_policy::spread_scaled) {
    tol_.scale = std::max(diameter_, 1e-12);
  }
  if (diam_hull_.empty()) {
    sec_ = geom::smallest_enclosing_circle(scratch_distinct_, tol_,
                                           sec_violator_);
  } else {
    // SEC over the hull vertices only.  Sound: the circle tol-contains each
    // hull vertex (dist <= r + eps, a linear bound), and every interior
    // point is a convex combination of vertices, so its distance from the
    // center is at most the max vertex distance -- the same containment
    // holds.  The deterministic Welzl scan over the sorted input is
    // quadratic near its worst case on lex-sorted spread-out points (every
    // x-extreme restarts it), so at U > threshold the hull sequence is both
    // asymptotically and practically the right input.  sec_violator_ then
    // indexes the hull scan; the delta path keys the SEC keep on the hull
    // slot instead of the violator in this regime.
    sec_ = geom::smallest_enclosing_circle(diam_hull_, tol_, sec_violator_);
  }
  linear_ = geom::all_collinear(scratch_distinct_, tol_, collinear_witness_);
  occupied_grid_.build(scratch_distinct_, 2.0 * tol_.len_eps());
}

void configuration::rebuild_after_input_change(mutation_report& rep) {
  std::swap(scratch_prev_occupied_, occupied_);
  std::swap(scratch_prev_robots_, robots_);
  const geom::tol prev_tol = tol_;
  const geom::tol prev_cluster_tol = cluster_tol_;
  refresh_tol();
  cluster_and_sort();
  const bool same_locs =
      same_tol_bits(cluster_tol_, prev_cluster_tol) &&
      occupied_.size() == scratch_prev_occupied_.size() &&
      std::equal(occupied_.begin(), occupied_.end(),
                 scratch_prev_occupied_.begin(),
                 [](const occupied_point& a, const occupied_point& b) {
                   return same_bits(a.position, b.position);
                 });
  // Same locations + same tolerance: sec / diameter / hull / collinearity /
  // grid are deterministic functions of exactly those inputs -- keep them.
  bool kept_scalars = false;
  if (same_locs) {
    geom::tol candidate = tol_;  // diameter_ is untouched by cluster_and_sort
    if (policy_ == tol_policy::spread_scaled) {
      candidate.scale = std::max(diameter_, 1e-12);
    }
    if (same_tol_bits(candidate, prev_tol)) {
      tol_ = candidate;
      kept_scalars = true;
    }
  }
  if (!kept_scalars) derive_scalars();

  rep.tol_changed = !same_tol_bits(tol_, prev_tol);
  rep.structure_changed = !same_locs;
  rep.snap_merges = 0;
  for (const std::size_t i : scratch_changed_) {
    if (!same_bits(robots_[i], input_[i])) ++rep.snap_merges;
  }
  if (same_locs && !rep.tol_changed) {
    const bool mults_same = std::equal(
        occupied_.begin(), occupied_.end(), scratch_prev_occupied_.begin(),
        [](const occupied_point& a, const occupied_point& b) {
          return a.multiplicity == b.multiplicity;
        });
    const bool robots_same =
        robots_.size() == scratch_prev_robots_.size() &&
        std::equal(robots_.begin(), robots_.end(),
                   scratch_prev_robots_.begin(),
                   [](vec2 a, vec2 b) { return same_bits(a, b); });
    if (mults_same && robots_same) {
      rep.kind = mutation_kind::cache_kept;
      rep.cache_kept = true;
    } else {
      rep.kind = mutation_kind::mults_only;
    }
  } else {
    rep.kind = mutation_kind::rebuild;
  }
}

bool configuration::try_delta(mutation_report& rep) {
  const std::size_t k = scratch_changed_.size();
  const std::size_t u = occupied_.size();
  if (k == 0 || u == 0) return false;
  // spread_scaled re-derives the tolerance scale from the diameter; proving
  // that unchanged in O(k) is not worth the extra machinery -- the engines
  // run under the refreshed policy.
  if (policy_ == tol_policy::spread_scaled) return false;
  if (robots_.size() != u) return false;  // multiplicities present
  if (k > delta_mover_cap(u)) return false;
  if (occupied_grid_.size() != u) return false;
  GATHER_CHECK(same_tol_bits(tol_, cluster_tol_),
               "fixed/refreshed tolerance equals the clustering tolerance");

  if (policy_ == tol_policy::refreshed) {
    // The refreshed tolerance must be provably unchanged.  Movers strictly
    // interior to the input bounding box and magnitude cannot shift any of
    // the extrema geom::tol::for_points takes; otherwise recompute in O(n)
    // and require bitwise equality.
    if (!bounds_.valid) return false;
    const auto strictly_inside = [&](vec2 p) {
      return bounds_.lo_x < p.x && p.x < bounds_.hi_x && bounds_.lo_y < p.y &&
             p.y < bounds_.hi_y && std::fabs(p.x) < bounds_.mag &&
             std::fabs(p.y) < bounds_.mag;
    };
    bool interior = true;
    for (std::size_t j = 0; j < k && interior; ++j) {
      interior = strictly_inside(scratch_old_pos_[j]) &&
                 strictly_inside(scratch_new_pos_[j]);
    }
    if (!interior) {
      recompute_bounds();
      geom::tol nt = tol_from_bounds();
      nt.abs_floor = std::max(nt.abs_floor, refresh_floor_);
      if (!same_tol_bits(nt, tol_)) return false;
    }
  }

  // All-singleton (n == |U|) means every snapped position equals its raw
  // input, so each mover's old position is an exact grid entry.
  scratch_handles_.clear();
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t h = occupied_grid_.find_exact(scratch_old_pos_[j]);
    if (h == geom::spatial_grid::npos) return false;
    scratch_handles_.push_back(h);
  }
  scratch_handles_sorted_ = scratch_handles_;
  std::sort(scratch_handles_sorted_.begin(), scratch_handles_sorted_.end());

  // Every new position must be tolerance-isolated from every location that
  // stays (no snap-merge, configuration stays all-singleton: the greedy
  // clustering of a pairwise non-matching input is the identity) ...
  for (std::size_t j = 0; j < k; ++j) {
    if (occupied_grid_.match_excluding(scratch_new_pos_[j], tol_,
                                       scratch_handles_sorted_) !=
        geom::spatial_grid::npos) {
      return false;
    }
  }
  // ... and from the other movers' new positions.
  if (k > 1) {
    geom::spatial_grid& g = scratch_cluster_grid_;
    g.reset(2.0 * tol_.len_eps());
    for (std::size_t j = 0; j < k; ++j) {
      if (g.min_handle_match(scratch_new_pos_[j], tol_) !=
          geom::spatial_grid::npos) {
        return false;
      }
      (void)g.insert(scratch_new_pos_[j]);
    }
  }

  // Displacement budget, measured before mutating anything (the repair
  // cannot abort halfway): when the sorted-array shifts exceed a rebuild's
  // touch count, fall back.
  std::size_t shift_budget = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto b = occupied_.begin();
    const auto it_old = std::lower_bound(b, occupied_.end(),
                                         scratch_old_pos_[j], occupied_less);
    if (it_old == occupied_.end() ||
        !same_bits(it_old->position, scratch_old_pos_[j])) {
      return false;
    }
    const std::size_t io = static_cast<std::size_t>(it_old - b);
    const std::size_t in = static_cast<std::size_t>(
        std::lower_bound(b, occupied_.end(), scratch_new_pos_[j],
                         occupied_less) -
        b);
    shift_budget += io > in ? io - in : in - io;
  }
  if (shift_budget > 2 * u + 16 * k) return false;

  // --- committed: repair the canonical state in place ---
  std::size_t min_touched = geom::spatial_grid::npos;
  for (std::size_t j = 0; j < k; ++j) {
    const vec2 oldp = scratch_old_pos_[j];
    const vec2 newp = scratch_new_pos_[j];
    const auto b = occupied_.begin();
    const std::size_t io = static_cast<std::size_t>(
        std::lower_bound(b, occupied_.end(), oldp, occupied_less) - b);
    const std::size_t in = static_cast<std::size_t>(
        std::lower_bound(b, occupied_.end(), newp, occupied_less) - b);
    if (in > io) {
      std::move(b + static_cast<std::ptrdiff_t>(io) + 1,
                b + static_cast<std::ptrdiff_t>(in),
                b + static_cast<std::ptrdiff_t>(io));
      occupied_[in - 1] = occupied_point{newp, 1};
      std::move(occ_xs_.begin() + static_cast<std::ptrdiff_t>(io) + 1,
                occ_xs_.begin() + static_cast<std::ptrdiff_t>(in),
                occ_xs_.begin() + static_cast<std::ptrdiff_t>(io));
      std::move(occ_ys_.begin() + static_cast<std::ptrdiff_t>(io) + 1,
                occ_ys_.begin() + static_cast<std::ptrdiff_t>(in),
                occ_ys_.begin() + static_cast<std::ptrdiff_t>(io));
      occ_xs_[in - 1] = newp.x;
      occ_ys_[in - 1] = newp.y;
      min_touched = std::min(min_touched, io);
    } else {
      std::move_backward(b + static_cast<std::ptrdiff_t>(in),
                         b + static_cast<std::ptrdiff_t>(io),
                         b + static_cast<std::ptrdiff_t>(io) + 1);
      occupied_[in] = occupied_point{newp, 1};
      std::move_backward(occ_xs_.begin() + static_cast<std::ptrdiff_t>(in),
                         occ_xs_.begin() + static_cast<std::ptrdiff_t>(io),
                         occ_xs_.begin() + static_cast<std::ptrdiff_t>(io) + 1);
      std::move_backward(occ_ys_.begin() + static_cast<std::ptrdiff_t>(in),
                         occ_ys_.begin() + static_cast<std::ptrdiff_t>(io),
                         occ_ys_.begin() + static_cast<std::ptrdiff_t>(io) + 1);
      occ_xs_[in] = newp.x;
      occ_ys_[in] = newp.y;
      min_touched = std::min(min_touched, in);
    }
    robots_[scratch_changed_[j]] = newp;
    occupied_grid_.move(scratch_handles_[j], newp);
  }

  bool distinct_fresh = false;
  const auto ensure_distinct = [&] {
    if (distinct_fresh) return;
    scratch_distinct_.clear();
    scratch_distinct_.reserve(occupied_.size());
    for (const occupied_point& o : occupied_) {
      scratch_distinct_.push_back(o.position);
    }
    distinct_fresh = true;
  };

  // Diameter: points strictly interior to the exact hull (old and new) can
  // neither be nor displace a hull vertex, so hull and diameter are the
  // same doubles.  U <= 64 keeps no hull and recomputes all-pairs.
  bool keep_diam = !diam_hull_.empty();
  for (std::size_t j = 0; j < k && keep_diam; ++j) {
    keep_diam = strictly_inside_hull(diam_hull_, scratch_old_pos_[j]) &&
                strictly_inside_hull(diam_hull_, scratch_new_pos_[j]);
  }
  if (!keep_diam) {
    ensure_distinct();
    compute_diameter_and_hull();
  }

  // SEC.  In the hull regime (U > threshold) the circle is a deterministic
  // function of the hull vertex sequence alone, so a bitwise-kept hull
  // implies a bitwise-identical cold re-run; a repaired hull feeds a cheap
  // recompute over its vertices.  Below the threshold the cold scan runs
  // over the full sorted array: it restarted for the last time at index
  // sec_violator_, so if every touched sorted index lies strictly beyond it
  // and every new position is contained in the cached circle, a cold re-run
  // would execute identically (identical prefix, no restarts in the
  // suffix) -- keep circle and violator.  min_touched is a lower bound on
  // the first differing index, so the test is conservative.
  if (!diam_hull_.empty()) {
    if (!keep_diam) {
      sec_ = geom::smallest_enclosing_circle(diam_hull_, tol_, sec_violator_);
    }
  } else {
    bool keep_sec = min_touched > sec_violator_;
    for (std::size_t j = 0; j < k && keep_sec; ++j) {
      keep_sec = sec_.contains(scratch_new_pos_[j], tol_);
    }
    if (!keep_sec) {
      ensure_distinct();
      sec_ = geom::smallest_enclosing_circle(scratch_distinct_, tol_,
                                             sec_violator_);
    }
  }

  // Collinearity: keep a cached "false" when the witness still applies --
  // the anchor a (= pts[0]) is unchanged, every mover stays strictly closer
  // to a than the recorded farthest distance (so b and best_d are
  // unchanged), and the recorded off-line point is still present.  A cold
  // re-run then still scans some non-zero orientation (at the off-line
  // point at the latest).  linear_ == true always recomputes.
  bool keep_lin = !linear_ && collinear_witness_.valid &&
                  collinear_witness_.has_off_line &&
                  same_bits(occupied_.front().position, collinear_witness_.a);
  for (std::size_t j = 0; j < k && keep_lin; ++j) {
    keep_lin =
        !same_bits(scratch_old_pos_[j], collinear_witness_.off_line) &&
        geom::distance(collinear_witness_.a, scratch_old_pos_[j]) <
            collinear_witness_.best_d &&
        geom::distance(collinear_witness_.a, scratch_new_pos_[j]) <
            collinear_witness_.best_d;
  }
  if (!keep_lin) {
    ensure_distinct();
    linear_ = geom::all_collinear(scratch_distinct_, tol_, collinear_witness_);
  }

  scratch_changed_slots_.clear();
  for (std::size_t j = 0; j < k; ++j) {
    const std::optional<std::size_t> idx = find_occupied(scratch_new_pos_[j]);
    scratch_changed_slots_.push_back(idx.value());
  }
  std::sort(scratch_changed_slots_.begin(), scratch_changed_slots_.end());
  rep.kind = mutation_kind::delta;
  rep.structure_changed = true;
  rep.tol_changed = false;
  rep.snap_merges = 0;
  rep.changed_occupied = scratch_changed_slots_;

#ifdef GATHER_CHECK_INVARIANTS
  for (std::size_t i = 0; i + 1 < occupied_.size(); ++i) {
    GATHER_CHECK(occupied_[i].position < occupied_[i + 1].position,
                 "occupied stays strictly sorted after the delta repair");
  }
  GATHER_CHECK(occupied_grid_.size() == occupied_.size(),
               "the occupied grid tracks the occupied array");
  GATHER_CHECK(occ_xs_.size() == occupied_.size() &&
                   occ_ys_.size() == occupied_.size(),
               "the SoA mirror tracks the occupied array");
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    GATHER_CHECK(occ_xs_[i] == occupied_[i].position.x &&
                     occ_ys_[i] == occupied_[i].position.y,
                 "the SoA mirror equals the occupied positions bitwise");
  }
#endif
  return true;
}

void configuration::bump_and_invalidate(const mutation_report& rep) {
  if (rep.cache_kept) return;  // canonical state bitwise unchanged
  ++generation_;
  if (derived_) derived_->on_mutation(rep);
}

int configuration::multiplicity(vec2 p) const {
  int result = 0;
  const std::size_t h = occupied_grid_.lex_min_match(p, tol_);
  if (h != geom::spatial_grid::npos) {
    const std::optional<std::size_t> idx =
        find_occupied(occupied_grid_.position(h));
    result = occupied_[idx.value()].multiplicity;
  }
#ifdef GATHER_CHECK_INVARIANTS
  int oracle = 0;
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) {
      oracle = o.multiplicity;
      break;
    }
  }
  GATHER_CHECK(result == oracle, "grid multiplicity equals the linear scan");
#endif
  return result;
}

std::optional<std::size_t> configuration::find_occupied(vec2 p) const {
  const auto it = std::lower_bound(
      occupied_.begin(), occupied_.end(), p,
      [](const occupied_point& o, vec2 q) { return o.position < q; });
  if (it != occupied_.end() && it->position.x == p.x && it->position.y == p.y) {
    return static_cast<std::size_t>(it - occupied_.begin());
  }
  return std::nullopt;
}

std::optional<std::size_t> configuration::first_occupied_match(vec2 p) const {
  std::optional<std::size_t> result;
  const std::size_t h = occupied_grid_.lex_min_match(p, tol_);
  if (h != geom::spatial_grid::npos) {
    result = find_occupied(occupied_grid_.position(h));
  }
#ifdef GATHER_CHECK_INVARIANTS
  std::optional<std::size_t> oracle;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (tol_.same_point(occupied_[i].position, p)) {
      oracle = i;
      break;
    }
  }
  GATHER_CHECK(result == oracle, "grid first match equals the linear scan");
#endif
  return result;
}

std::optional<std::size_t> configuration::nearest_occupied(vec2 p) const {
  std::optional<std::size_t> result;
  const std::size_t h = occupied_grid_.nearest(p);
  if (h != geom::spatial_grid::npos) {
    result = find_occupied(occupied_grid_.position(h));
  }
#ifdef GATHER_CHECK_INVARIANTS
  std::optional<std::size_t> oracle;
  double best = 0.0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    const double d = geom::distance(occupied_[i].position, p);
    if (!oracle.has_value() || d < best) {
      oracle = i;
      best = d;
    }
  }
  GATHER_CHECK(result == oracle, "grid nearest equals the linear scan");
#endif
  return result;
}

vec2 configuration::snapped(vec2 p) const {
  vec2 result = p;
  const std::size_t h = occupied_grid_.lex_min_match(p, tol_);
  if (h != geom::spatial_grid::npos) result = occupied_grid_.position(h);
#ifdef GATHER_CHECK_INVARIANTS
  vec2 oracle = p;
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) {
      oracle = o.position;
      break;
    }
  }
  GATHER_CHECK(same_bits(result, oracle), "grid snap equals the linear scan");
#endif
  return result;
}

double configuration::sum_distances(vec2 p) const {
  double s = 0.0;
  for (const occupied_point& o : occupied_) {
    s += o.multiplicity * geom::distance(p, o.position);
  }
  return s;
}

mutation_report configuration::set_position(std::size_t i, vec2 p) {
  if (i >= input_.size()) {
    throw std::out_of_range("configuration::set_position: index out of range");
  }
  mutation_report rep;
  if (same_bits(input_[i], p)) {
    make_no_op(rep);
    return rep;
  }
  scratch_changed_.assign(1, i);
  scratch_old_pos_.assign(1, input_[i]);
  scratch_new_pos_.assign(1, p);
  input_[i] = p;
  rep.moved = 1;
  if (!try_delta(rep)) rebuild_after_input_change(rep);
  bump_and_invalidate(rep);
  return rep;
}

mutation_report configuration::apply_moves(const std::vector<vec2>& raw) {
  return apply_moves(raw, {});
}

mutation_report configuration::apply_moves(
    const std::vector<vec2>& raw, std::span<const std::uint8_t> moved_hint) {
  mutation_report rep;
  if (raw.size() != input_.size()) {
    scratch_changed_.clear();
    scratch_old_pos_.clear();
    scratch_new_pos_.clear();
    input_ = raw;
    rep.moved = raw.size();
    rebuild_after_input_change(rep);
    bump_and_invalidate(rep);
    return rep;
  }
  GATHER_CHECK(moved_hint.empty() || moved_hint.size() == raw.size(),
               "apply_moves hint must be empty or have one entry per robot");
  const bool hinted = moved_hint.size() == raw.size();
  scratch_changed_.clear();
  scratch_old_pos_.clear();
  scratch_new_pos_.clear();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (hinted && moved_hint[i] == 0) continue;
    if (!same_bits(raw[i], input_[i])) {
      scratch_changed_.push_back(i);
      scratch_old_pos_.push_back(input_[i]);
      scratch_new_pos_.push_back(raw[i]);
    }
  }
#ifdef GATHER_CHECK_INVARIANTS
  if (hinted) {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      GATHER_CHECK(moved_hint[i] != 0 || same_bits(raw[i], input_[i]),
                   "unhinted apply_moves entries must be bitwise unchanged");
    }
  }
#endif
  if (scratch_changed_.empty()) {
    // Bitwise-identical input: the canonical state (a deterministic function
    // of the input and the policy) is provably unchanged -- keep the cache.
    make_no_op(rep);
    return rep;
  }
  if (hinted) {
    for (std::size_t j = 0; j < scratch_changed_.size(); ++j) {
      input_[scratch_changed_[j]] = scratch_new_pos_[j];
    }
  } else {
    input_ = raw;  // copy-assign reuses capacity
  }
  rep.moved = scratch_changed_.size();
  if (!try_delta(rep)) rebuild_after_input_change(rep);
  bump_and_invalidate(rep);
  return rep;
}

mutation_report configuration::insert_robot(vec2 p) {
  input_.push_back(p);
  mutation_report rep;
  scratch_changed_.clear();
  scratch_old_pos_.clear();
  scratch_new_pos_.clear();
  rebuild_after_input_change(rep);
  bump_and_invalidate(rep);
  return rep;
}

mutation_report configuration::remove_robot(std::size_t i) {
  if (i >= input_.size()) {
    throw std::out_of_range("configuration::remove_robot: index out of range");
  }
  input_.erase(input_.begin() + static_cast<std::ptrdiff_t>(i));
  mutation_report rep;
  scratch_changed_.clear();
  scratch_old_pos_.clear();
  scratch_new_pos_.clear();
  rebuild_after_input_change(rep);
  bump_and_invalidate(rep);
  return rep;
}

mutation_report configuration::set_tol_refresh(double abs_floor) {
  policy_ = tol_policy::refreshed;
  refresh_floor_ = abs_floor;
  mutation_report rep;
  scratch_changed_.clear();
  scratch_old_pos_.clear();
  scratch_new_pos_.clear();
  rebuild_after_input_change(rep);
  bump_and_invalidate(rep);
  return rep;
}

derived_geometry& configuration::derived() const {
  if (!derived_) derived_ = std::make_unique<derived_geometry>();
  return *derived_;
}

}  // namespace gather::config
