#include "config/configuration.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"

namespace gather::config {

configuration::configuration(std::vector<vec2> robots) : robots_(std::move(robots)) {
  tol_ = geom::tol::for_points(robots_);
  canonicalize();
}

configuration::configuration(std::vector<vec2> robots, geom::tol t)
    : robots_(std::move(robots)), tol_(t), explicit_tol_(true) {
  canonicalize();
}

void configuration::canonicalize() {
  // Greedy clustering: a point joins the first cluster whose representative
  // is within tolerance.  Quadratic in |U(C)| which is at most n.
  struct cluster {
    vec2 sum{};
    int count = 0;
    [[nodiscard]] vec2 centroid() const { return sum / static_cast<double>(count); }
  };
  std::vector<cluster> clusters;
  std::vector<std::size_t> assignment(robots_.size());
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    const vec2 p = robots_[i];
    bool placed = false;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (tol_.same_point(p, clusters[c].centroid())) {
        clusters[c].sum += p;
        clusters[c].count += 1;
        assignment[i] = c;
        placed = true;
        break;
      }
    }
    if (!placed) {
      clusters.push_back({p, 1});
      assignment[i] = clusters.size() - 1;
    }
  }
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    robots_[i] = clusters[assignment[i]].centroid();
  }

  occupied_.clear();
  occupied_.reserve(clusters.size());
  for (const cluster& c : clusters) {
    occupied_.push_back({c.centroid(), c.count});
  }
  std::sort(occupied_.begin(), occupied_.end(),
            [](const occupied_point& a, const occupied_point& b) {
              return a.position < b.position;
            });

  diameter_ = 0.0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    for (std::size_t j = i + 1; j < occupied_.size(); ++j) {
      diameter_ = std::max(
          diameter_, geom::distance(occupied_[i].position, occupied_[j].position));
    }
  }
  if (!explicit_tol_) {
    tol_.scale = std::max(diameter_, 1e-12);
  }

  std::vector<vec2> distinct;
  distinct.reserve(occupied_.size());
  for (const occupied_point& o : occupied_) distinct.push_back(o.position);
  sec_ = geom::smallest_enclosing_circle(distinct, tol_);
  linear_ = geom::all_collinear(distinct, tol_);
}

int configuration::multiplicity(vec2 p) const {
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) return o.multiplicity;
  }
  return 0;
}

vec2 configuration::snapped(vec2 p) const {
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) return o.position;
  }
  return p;
}

double configuration::sum_distances(vec2 p) const {
  double s = 0.0;
  for (const occupied_point& o : occupied_) {
    s += o.multiplicity * geom::distance(p, o.position);
  }
  return s;
}

}  // namespace gather::config
