#include "config/configuration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "config/derived.h"
#include "geometry/predicates.h"

namespace gather::config {

configuration::configuration() = default;
configuration::~configuration() = default;

configuration::configuration(configuration&& other) noexcept = default;
configuration& configuration::operator=(configuration&& other) noexcept =
    default;

configuration::configuration(const configuration& other)
    : input_(other.input_),
      robots_(other.robots_),
      occupied_(other.occupied_),
      tol_(other.tol_),
      sec_(other.sec_),
      diameter_(other.diameter_),
      linear_(other.linear_),
      policy_(other.policy_),
      refresh_floor_(other.refresh_floor_),
      generation_(other.generation_) {}

configuration& configuration::operator=(const configuration& other) {
  if (this == &other) return *this;
  input_ = other.input_;
  robots_ = other.robots_;
  occupied_ = other.occupied_;
  tol_ = other.tol_;
  sec_ = other.sec_;
  diameter_ = other.diameter_;
  linear_ = other.linear_;
  policy_ = other.policy_;
  refresh_floor_ = other.refresh_floor_;
  generation_ = other.generation_;
  if (derived_) derived_->clear();  // cold cache; recomputed on demand
  return *this;
}

configuration::configuration(std::vector<vec2> robots)
    : input_(std::move(robots)) {
  tol_ = geom::tol::for_points(input_);
  canonicalize();
}

configuration::configuration(std::vector<vec2> robots, geom::tol t)
    : input_(std::move(robots)), tol_(t), policy_(tol_policy::fixed) {
  canonicalize();
}

void configuration::canonicalize() {
  robots_ = input_;
  // Greedy clustering: a point joins the first cluster whose representative
  // is within tolerance.  Quadratic in |U(C)| which is at most n.
  std::vector<cluster>& clusters = scratch_clusters_;
  std::vector<std::size_t>& assignment = scratch_assign_;
  clusters.clear();
  assignment.resize(robots_.size());
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    const vec2 p = robots_[i];
    bool placed = false;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (tol_.same_point(p, clusters[c].centroid())) {
        clusters[c].sum += p;
        clusters[c].count += 1;
        assignment[i] = c;
        placed = true;
        break;
      }
    }
    if (!placed) {
      clusters.push_back({p, 1});
      assignment[i] = clusters.size() - 1;
    }
  }
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    robots_[i] = clusters[assignment[i]].centroid();
  }

  occupied_.clear();
  occupied_.reserve(clusters.size());
  for (const cluster& c : clusters) {
    occupied_.push_back({c.centroid(), c.count});
  }
  std::sort(occupied_.begin(), occupied_.end(),
            [](const occupied_point& a, const occupied_point& b) {
              return a.position < b.position;
            });

  diameter_ = 0.0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    for (std::size_t j = i + 1; j < occupied_.size(); ++j) {
      diameter_ = std::max(
          diameter_, geom::distance(occupied_[i].position, occupied_[j].position));
    }
  }
  if (policy_ == tol_policy::spread_scaled) {
    tol_.scale = std::max(diameter_, 1e-12);
  }

  std::vector<vec2>& distinct = scratch_distinct_;
  distinct.clear();
  distinct.reserve(occupied_.size());
  for (const occupied_point& o : occupied_) distinct.push_back(o.position);
  sec_ = geom::smallest_enclosing_circle(distinct, tol_);
  linear_ = geom::all_collinear(distinct, tol_);
}

void configuration::refresh() {
  switch (policy_) {
    case tol_policy::spread_scaled:
      tol_ = geom::tol::for_points(input_);
      break;
    case tol_policy::fixed:
      break;  // the explicit tolerance is carried unchanged
    case tol_policy::refreshed:
      tol_ = geom::tol::for_points(input_);
      tol_.abs_floor = std::max(tol_.abs_floor, refresh_floor_);
      break;
  }
  canonicalize();
}

void configuration::invalidate() {
  ++generation_;
  if (derived_) derived_->clear();
}

int configuration::multiplicity(vec2 p) const {
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) return o.multiplicity;
  }
  return 0;
}

std::optional<std::size_t> configuration::find_occupied(vec2 p) const {
  const auto it = std::lower_bound(
      occupied_.begin(), occupied_.end(), p,
      [](const occupied_point& o, vec2 q) { return o.position < q; });
  if (it != occupied_.end() && it->position.x == p.x && it->position.y == p.y) {
    return static_cast<std::size_t>(it - occupied_.begin());
  }
  return std::nullopt;
}

vec2 configuration::snapped(vec2 p) const {
  for (const occupied_point& o : occupied_) {
    if (tol_.same_point(o.position, p)) return o.position;
  }
  return p;
}

double configuration::sum_distances(vec2 p) const {
  double s = 0.0;
  for (const occupied_point& o : occupied_) {
    s += o.multiplicity * geom::distance(p, o.position);
  }
  return s;
}

void configuration::set_position(std::size_t i, vec2 p) {
  if (i >= input_.size()) {
    throw std::out_of_range("configuration::set_position: index out of range");
  }
  input_[i] = p;
  refresh();
  invalidate();
}

void configuration::apply_moves(const std::vector<vec2>& raw) {
  // Bitwise-identical input: the canonical state (a deterministic function
  // of the input and the policy) is provably unchanged -- keep the cache.
  if (raw.size() == input_.size() &&
      std::equal(raw.begin(), raw.end(), input_.begin(),
                 [](const vec2& a, const vec2& b) {
                   return a.x == b.x && a.y == b.y;
                 })) {
    return;
  }
  input_ = raw;  // copy-assign reuses capacity
  refresh();
  invalidate();
}

void configuration::insert_robot(vec2 p) {
  input_.push_back(p);
  refresh();
  invalidate();
}

void configuration::remove_robot(std::size_t i) {
  if (i >= input_.size()) {
    throw std::out_of_range("configuration::remove_robot: index out of range");
  }
  input_.erase(input_.begin() + static_cast<std::ptrdiff_t>(i));
  refresh();
  invalidate();
}

void configuration::set_tol_refresh(double abs_floor) {
  policy_ = tol_policy::refreshed;
  refresh_floor_ = abs_floor;
  refresh();
  invalidate();
}

derived_geometry& configuration::derived() const {
  if (!derived_) derived_ = std::make_unique<derived_geometry>();
  return *derived_;
}

}  // namespace gather::config
