#include "config/derived.h"

#include "geometry/convex_hull.h"
#include "util/check.h"

namespace gather::config {

namespace {

/// Multiplicity re-expansion repair (mults_only mutations): the cached order
/// holds every location's entries adjacent (identical sort keys), so
/// collapsing adjacent equal positions recovers one entry per location, and
/// re-expanding each by its current multiplicity reproduces
/// angular_order_uncached under the new multiplicities bit for bit -- the
/// per-location key (theta, dist, position) is untouched and the sort is by
/// that full key, so repetition counts are the only degree of freedom.
void reexpand_with_mults(const configuration& c,
                         std::vector<angular_entry>& entries,
                         std::vector<angular_entry>& scratch) {
  scratch.clear();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && entries[i].position == entries[i - 1].position) continue;
    const auto slot = c.find_occupied(entries[i].position);
    GATHER_CHECK(slot.has_value(),
                 "mults_only repair: cached location still occupied");
    const int mult = c.occupied()[*slot].multiplicity;
    for (int k = 0; k < mult; ++k) scratch.push_back(entries[i]);
  }
  entries.swap(scratch);  // capacities circulate between slot and scratch
}

}  // namespace

void derived_geometry::clear() {
  verdict.reset();
  weber.reset();
  linear_weber.reset();
  qr_ready = false;
  qr.reset();
  hull.reset();
  safe_points.reset();
  for (view& v : views) v.clear();  // keep per-slot capacity
  view_ready.clear();
  view_classes.reset();
  angles_about_center.clear();  // keep capacity
  angles_state = 0;
  for (std::vector<angular_entry>& o : polar_orders) o.clear();  // keep capacity
  polar_order_ready.clear();
  symmetry.reset();
  // scratch_* buffers hold no cross-call state.
}

void derived_geometry::on_mutation(const mutation_report& rep) {
  if (rep.kind != mutation_kind::mults_only) {
    // delta / rebuild: some occupied location moved.  Def. 2 views and every
    // other slot observe all robots, so every slot's inputs changed -- an
    // all-slots drop is the *correct* invalidation here, not a shortcut.
    // (The structure-repairable survivors of a delta -- SEC, diameter, hull,
    // collinearity -- live in the configuration itself, where they are kept
    // under exact-arithmetic witnesses; the tolerant hull slot here is NOT
    // kept because tolerant-predicate runs under moved inputs are not
    // provably bit-identical.  See docs/PERFORMANCE.md.)
    clear();
    return;
  }
  // mults_only: the distinct locations and the tolerance are bitwise
  // unchanged; only multiplicities (and the robot->location assignment)
  // moved.  The hull is a function of exactly those unchanged inputs: keep
  // it.  The angular tables keep their per-location geometry and repair
  // their multiplicity expansion lazily; everything else reads
  // multiplicities and drops.
  verdict.reset();
  weber.reset();
  linear_weber.reset();
  qr_ready = false;
  qr.reset();
  safe_points.reset();
  for (view& v : views) v.clear();  // view entries embed multiplicities
  view_ready.assign(view_ready.size(), 0);
  view_classes.reset();
  if (angles_state == 1) angles_state = 2;
  for (char& r : polar_order_ready) {
    if (r == 1) r = 2;
  }
  symmetry.reset();  // the rotation-kernel symbols embed multiplicities
}

std::vector<vec2> hull(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.hull) {
    std::vector<vec2> distinct;
    distinct.reserve(c.distinct_count());
    for (const occupied_point& o : c.occupied()) distinct.push_back(o.position);
    d.hull = geom::convex_hull(distinct, c.tolerance());
  }
  return *d.hull;
}

namespace detail {

const std::vector<angular_entry>& angles_about_center_slot(
    const configuration& c) {
  derived_geometry& d = c.derived();
  if (d.angles_state == 2) {
    reexpand_with_mults(c, d.angles_about_center, d.scratch_entries);
    d.angles_state = 1;
  } else if (d.angles_state == 0) {
    angular_order_into(c, c.sec().center, d.angles_about_center);
    d.angles_state = 1;
  }
  return d.angles_about_center;
}

}  // namespace detail

std::vector<angular_entry> angular_order_about_center(const configuration& c) {
  return detail::angles_about_center_slot(c);
}

const std::vector<angular_entry>& angular_order_of_occupied(
    const configuration& c, std::size_t i) {
  derived_geometry& d = c.derived();
  const std::size_t k = c.distinct_count();
  if (d.polar_order_ready.size() != k) {
    if (d.polar_orders.size() < k) d.polar_orders.resize(k);  // grow-only pool
    d.polar_order_ready.assign(k, 0);
  }
  if (d.polar_order_ready[i] == 2) {
    reexpand_with_mults(c, d.polar_orders[i], d.scratch_entries);
    d.polar_order_ready[i] = 1;
  } else if (d.polar_order_ready[i] == 0) {
    detail::angular_order_into(c, c.occupied()[i].position, d.polar_orders[i]);
    d.polar_order_ready[i] = 1;
  }
  return d.polar_orders[i];
}

polar_ref angular_order_ref(const configuration& c, vec2 center) {
  // Cache routing demands an exact bitwise position match: a merely
  // tolerance-close center yields different angles and therefore different
  // bits, so it is computed uncached.
  polar_ref r;
  if (const auto i = c.find_occupied(center)) {
    // Past the cache cap the quadratic polar table costs more memory than
    // its rereads save; hand out owning storage instead (identical entries:
    // same angular_order_into, uncached).
    if (c.distinct_count() <= polar_order_cache_cap) {
      r.aliased_ = &angular_order_of_occupied(c, *i);
      return r;
    }
    detail::angular_order_into(c, center, r.owned_);
    return r;
  }
  const vec2 sec_center = c.sec().center;
  if (center.x == sec_center.x && center.y == sec_center.y) {
    r.aliased_ = &detail::angles_about_center_slot(c);
    return r;
  }
  detail::angular_order_into(c, center, r.owned_);
  return r;
}

}  // namespace gather::config
