#include "config/derived.h"

#include "geometry/convex_hull.h"

namespace gather::config {

void derived_geometry::clear() {
  verdict.reset();
  weber.reset();
  linear_weber.reset();
  qr_ready = false;
  qr.reset();
  hull.reset();
  safe_points.reset();
  for (view& v : views) v.clear();  // keep per-slot capacity
  view_ready.clear();
  view_classes.reset();
  angles_about_center.reset();
  for (std::vector<angular_entry>& o : polar_orders) o.clear();  // keep capacity
  polar_order_ready.clear();
  symmetry.reset();
  // scratch_thetas / scratch_reps / scratch_dists hold no cross-call state.
}

std::vector<vec2> hull(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.hull) {
    std::vector<vec2> distinct;
    distinct.reserve(c.distinct_count());
    for (const occupied_point& o : c.occupied()) distinct.push_back(o.position);
    d.hull = geom::convex_hull(distinct, c.tolerance());
  }
  return *d.hull;
}

std::vector<angular_entry> angular_order_about_center(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.angles_about_center) {
    d.angles_about_center = detail::angular_order_uncached(c, c.sec().center);
  }
  return *d.angles_about_center;
}

const std::vector<angular_entry>& angular_order_of_occupied(
    const configuration& c, std::size_t i) {
  derived_geometry& d = c.derived();
  const std::size_t k = c.distinct_count();
  if (d.polar_order_ready.size() != k) {
    if (d.polar_orders.size() < k) d.polar_orders.resize(k);
    d.polar_order_ready.assign(k, 0);
  }
  if (!d.polar_order_ready[i]) {
    d.polar_orders[i] =
        detail::angular_order_uncached(c, c.occupied()[i].position);
    d.polar_order_ready[i] = 1;
  }
  return d.polar_orders[i];
}

const std::vector<angular_entry>& angular_order_ref(
    const configuration& c, vec2 center, std::vector<angular_entry>& fallback) {
  // Cache routing demands an exact bitwise position match: a merely
  // tolerance-close center yields different angles and therefore different
  // bits, so it is computed uncached.
  if (const auto i = c.find_occupied(center)) {
    return angular_order_of_occupied(c, *i);
  }
  const vec2 sec_center = c.sec().center;
  if (center.x == sec_center.x && center.y == sec_center.y) {
    derived_geometry& d = c.derived();
    if (!d.angles_about_center) {
      d.angles_about_center = detail::angular_order_uncached(c, center);
    }
    return *d.angles_about_center;
  }
  fallback = detail::angular_order_uncached(c, center);
  return fallback;
}

}  // namespace gather::config
