#include "config/derived.h"

#include "geometry/convex_hull.h"

namespace gather::config {

void derived_geometry::clear() {
  verdict.reset();
  weber.reset();
  linear_weber.reset();
  qr_ready = false;
  qr.reset();
  hull.reset();
  safe_points.reset();
  for (view& v : views) v.clear();  // keep per-slot capacity
  view_ready.clear();
  view_classes.reset();
  angles_about_center.reset();
}

std::vector<vec2> hull(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.hull) {
    std::vector<vec2> distinct;
    distinct.reserve(c.distinct_count());
    for (const occupied_point& o : c.occupied()) distinct.push_back(o.position);
    d.hull = geom::convex_hull(distinct, c.tolerance());
  }
  return *d.hull;
}

std::vector<angular_entry> angular_order_about_center(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.angles_about_center) {
    d.angles_about_center = angular_order(c, c.sec().center);
  }
  return *d.angles_about_center;
}

}  // namespace gather::config
