#include "geometry/calipers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/convex_hull.h"
#include "geometry/predicates.h"

namespace gather::geom {

farthest_pair diameter_pair(std::span<const vec2> pts, const tol& t) {
  farthest_pair best{};
  if (pts.empty()) return best;
  best.a = best.b = pts[0];

  const auto hull = convex_hull(pts, t);
  const std::size_t h = hull.size();
  if (h == 1) {
    best.a = best.b = hull[0];
    return best;
  }
  if (h == 2) {
    best = {hull[0], hull[1], distance(hull[0], hull[1])};
    return best;
  }

  // Rotating calipers: advance the antipodal pointer while the triangle area
  // (distance to the current edge) keeps growing.
  std::size_t j = 1;
  for (std::size_t i = 0; i < h; ++i) {
    const vec2 e1 = hull[i];
    const vec2 e2 = hull[(i + 1) % h];
    while (std::fabs(cross(e2 - e1, hull[(j + 1) % h] - e1)) >
           std::fabs(cross(e2 - e1, hull[j] - e1))) {
      j = (j + 1) % h;
    }
    for (const vec2 cand : {hull[i], e2}) {
      const double d = distance(cand, hull[j]);
      if (d > best.distance) best = {cand, hull[j], d};
    }
  }
  return best;
}

double diameter(std::span<const vec2> pts, const tol& t) {
  return diameter_pair(pts, t).distance;
}

double width(std::span<const vec2> pts, const tol& t) {
  const auto hull = convex_hull(pts, t);
  const std::size_t h = hull.size();
  if (h < 3) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::size_t j = 1;
  for (std::size_t i = 0; i < h; ++i) {
    const vec2 e1 = hull[i];
    const vec2 e2 = hull[(i + 1) % h];
    const double elen = distance(e1, e2);
    if (elen == 0.0) continue;
    while (std::fabs(cross(e2 - e1, hull[(j + 1) % h] - e1)) >
           std::fabs(cross(e2 - e1, hull[j] - e1))) {
      j = (j + 1) % h;
    }
    best = std::min(best, std::fabs(cross(e2 - e1, hull[j] - e1)) / elen);
  }
  return std::isfinite(best) ? best : 0.0;
}

}  // namespace gather::geom
