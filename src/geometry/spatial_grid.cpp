#include "geometry/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace gather::geom {

namespace {

// Cell coordinates stay integral in double and far from int64 overflow up to
// this bound; beyond it the tails are clamped.  Clamping is monotone and
// never widens a gap, so two points within one cell edge of each other still
// land in adjacent (or equal) cell coordinates -- 3x3 completeness survives,
// only the pathological far-tail performance degrades.
constexpr double kCoordLimit = 4.0e15;

}  // namespace

std::int64_t spatial_grid::coord(double x) const {
  const double q = std::floor(x / cell_);
  if (!(q >= -kCoordLimit)) {  // also catches NaN
    return static_cast<std::int64_t>(-kCoordLimit);
  }
  if (q > kCoordLimit) return static_cast<std::int64_t>(kCoordLimit);
  return static_cast<std::int64_t>(q);
}

std::size_t spatial_grid::hash_cell(std::int64_t cx, std::int64_t cy) {
  std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

void spatial_grid::reset(double cell) {
  GATHER_CHECK(cell > 0.0, "spatial_grid cell edge must be positive");
  cell_ = cell;
  size_ = 0;
  used_cells_ = 0;
  for (cell_rec& c : cells_) c = cell_rec{};
  pos_.clear();
  next_.clear();
  prev_.clear();
  cell_slot_.clear();
  live_.clear();
  free_head_ = npos;
}

void spatial_grid::build(std::span<const vec2> pts, double cell) {
  reset(cell);
  if (cells_.size() < 2 * pts.size()) rehash(2 * pts.size());
  pos_.reserve(pts.size());
  next_.reserve(pts.size());
  prev_.reserve(pts.size());
  cell_slot_.reserve(pts.size());
  live_.reserve(pts.size());
  for (const vec2& p : pts) insert(p);
}

std::size_t spatial_grid::find_cell(std::int64_t cx, std::int64_t cy) const {
  if (cells_.empty()) return npos;
  const std::size_t mask = cells_.size() - 1;
  std::size_t slot = hash_cell(cx, cy) & mask;
  while (cells_[slot].used) {
    if (cells_[slot].cx == cx && cells_[slot].cy == cy) return slot;
    slot = (slot + 1) & mask;
  }
  return npos;
}

std::size_t spatial_grid::find_or_create_cell(std::int64_t cx,
                                              std::int64_t cy) {
  if (cells_.empty() || 8 * (used_cells_ + 1) > 5 * cells_.size()) {
    rehash(2 * (used_cells_ + 1));
  }
  const std::size_t mask = cells_.size() - 1;
  std::size_t slot = hash_cell(cx, cy) & mask;
  while (cells_[slot].used) {
    if (cells_[slot].cx == cx && cells_[slot].cy == cy) return slot;
    slot = (slot + 1) & mask;
  }
  cells_[slot] = cell_rec{cx, cy, npos, true};
  ++used_cells_;
  return slot;
}

void spatial_grid::rehash(std::size_t min_cells) {
  std::size_t cap = 16;
  while (cap < 2 * min_cells) cap *= 2;
  cells_scratch_.clear();
  cells_scratch_.resize(cap);
  std::swap(cells_, cells_scratch_);
  used_cells_ = 0;
  const std::size_t mask = cells_.size() - 1;
  for (const cell_rec& old : cells_scratch_) {
    if (!old.used || old.head == npos) continue;  // tombstones dropped here
    std::size_t slot = hash_cell(old.cx, old.cy) & mask;
    while (cells_[slot].used) slot = (slot + 1) & mask;
    cells_[slot] = old;
    ++used_cells_;
    for (std::size_t h = old.head; h != npos; h = next_[h]) {
      cell_slot_[h] = slot;
    }
  }
}

void spatial_grid::link(std::size_t h, std::size_t slot) {
  const std::size_t head = cells_[slot].head;
  next_[h] = head;
  prev_[h] = npos;
  if (head != npos) prev_[head] = h;
  cells_[slot].head = h;
  cell_slot_[h] = slot;
}

void spatial_grid::unlink(std::size_t h) {
  const std::size_t slot = cell_slot_[h];
  if (prev_[h] == npos) {
    cells_[slot].head = next_[h];
  } else {
    next_[prev_[h]] = next_[h];
  }
  if (next_[h] != npos) prev_[next_[h]] = prev_[h];
}

std::size_t spatial_grid::insert(vec2 p) {
  GATHER_CHECK(cell_ > 0.0, "spatial_grid used before reset()/build()");
  std::size_t h;
  if (free_head_ != npos) {
    h = free_head_;
    free_head_ = next_[h];
  } else {
    h = pos_.size();
    pos_.emplace_back();
    next_.push_back(npos);
    prev_.push_back(npos);
    cell_slot_.push_back(npos);
    live_.push_back(0);
  }
  pos_[h] = p;
  live_[h] = 1;
  link(h, find_or_create_cell(coord(p.x), coord(p.y)));
  ++size_;
  return h;
}

void spatial_grid::remove(std::size_t h) {
  GATHER_CHECK(h < live_.size() && live_[h], "spatial_grid::remove dead handle");
  unlink(h);
  live_[h] = 0;
  next_[h] = free_head_;
  free_head_ = h;
  --size_;
}

void spatial_grid::move(std::size_t h, vec2 p) {
  GATHER_CHECK(h < live_.size() && live_[h], "spatial_grid::move dead handle");
  const std::int64_t cx = coord(p.x);
  const std::int64_t cy = coord(p.y);
  const cell_rec& cur = cells_[cell_slot_[h]];
  if (cur.cx == cx && cur.cy == cy) {
    pos_[h] = p;
    return;
  }
  unlink(h);
  pos_[h] = p;
  link(h, find_or_create_cell(cx, cy));  // may rehash; link slot is fresh
}

std::size_t spatial_grid::find_exact(vec2 p) const {
  const std::size_t slot = find_cell(coord(p.x), coord(p.y));
  if (slot == npos) return npos;
  for (std::size_t h = cells_[slot].head; h != npos; h = next_[h]) {
    if (pos_[h].x == p.x && pos_[h].y == p.y) return h;
  }
  return npos;
}

template <typename Fn>
void spatial_grid::for_block(vec2 p, Fn&& fn) const {
  const std::int64_t cx = coord(p.x);
  const std::int64_t cy = coord(p.y);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const std::size_t slot = find_cell(cx + dx, cy + dy);
      if (slot == npos) continue;
      for (std::size_t h = cells_[slot].head; h != npos; h = next_[h]) {
        fn(h);
      }
    }
  }
}

std::size_t spatial_grid::min_handle_match(vec2 p, const tol& t) const {
  std::size_t best = npos;
  for_block(p, [&](std::size_t h) {
    if (h < best && t.same_point(pos_[h], p)) best = h;
  });
  return best;
}

std::size_t spatial_grid::lex_min_match(vec2 p, const tol& t) const {
  std::size_t best = npos;
  for_block(p, [&](std::size_t h) {
    if (!t.same_point(pos_[h], p)) return;
    if (best == npos || pos_[h] < pos_[best] ||
        (pos_[h] == pos_[best] && h < best)) {
      best = h;
    }
  });
  return best;
}

std::size_t spatial_grid::count_matches(vec2 p, const tol& t) const {
  std::size_t count = 0;
  for_block(p, [&](std::size_t h) {
    if (t.same_point(pos_[h], p)) ++count;
  });
  return count;
}

std::size_t spatial_grid::match_excluding(
    vec2 p, const tol& t, std::span<const std::size_t> excluded) const {
  std::size_t found = npos;
  for_block(p, [&](std::size_t h) {
    if (found != npos || !t.same_point(pos_[h], p)) return;
    if (std::binary_search(excluded.begin(), excluded.end(), h)) return;
    found = h;
  });
  return found;
}

std::size_t spatial_grid::nearest(vec2 p, std::size_t exclude) const {
  if (size_ == 0 || (size_ == 1 && exclude != npos && exclude < live_.size() &&
                     live_[exclude])) {
    return npos;
  }
  std::size_t best = npos;
  double best_d = 0.0;
  const auto consider = [&](std::size_t h) {
    if (h == exclude) return;
    const double d = distance(pos_[h], p);
    if (best == npos || d < best_d ||
        (d == best_d &&
         (pos_[h] < pos_[best] || (pos_[h] == pos_[best] && h < best)))) {
      best = h;
      best_d = d;
    }
  };

  const std::int64_t cx = coord(p.x);
  const std::int64_t cy = coord(p.y);
  constexpr std::int64_t kMaxRing = 64;
  for (std::int64_t r = 0; r <= kMaxRing; ++r) {
    // Any entry in ring r lies at Euclidean distance >= (r - 1) * cell_, so
    // once a candidate beats that bound the search is complete.
    if (best != npos && best_d < static_cast<double>(r - 1) * cell_) {
      return best;
    }
    const auto visit = [&](std::int64_t dx, std::int64_t dy) {
      const std::size_t slot = find_cell(cx + dx, cy + dy);
      if (slot == npos) return;
      for (std::size_t h = cells_[slot].head; h != npos; h = next_[h]) {
        consider(h);
      }
    };
    if (r == 0) {
      visit(0, 0);
      continue;
    }
    for (std::int64_t dx = -r; dx <= r; ++dx) {  // top and bottom edges
      visit(dx, -r);
      visit(dx, r);
    }
    for (std::int64_t dy = -r + 1; dy < r; ++dy) {  // side edges
      visit(-r, dy);
      visit(r, dy);
    }
  }
  if (best != npos) return best;
  // The ring walk crossed a large empty region: fall back to a full scan.
  for (std::size_t h = 0; h < live_.size(); ++h) {
    if (live_[h]) consider(h);
  }
  return best;
}

}  // namespace gather::geom
