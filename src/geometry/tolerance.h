// Tolerant floating-point comparison context.
//
// Every geometric decision in the library (co-location, collinearity, angle
// equality, view comparison, ...) is routed through a `tol` object so that the
// whole classification pipeline uses a single, consistent notion of "equal".
// This is what makes the algorithm's case analysis a deterministic function of
// the snapshot even when snapshots are expressed in different local frames
// (translation / rotation / uniform scaling; see sim::frame).
#pragma once

#include <algorithm>
#include <cmath>

#include "geometry/vec2.h"

namespace gather::geom {

/// Comparison context: `eps` is an absolute tolerance for quantities measured
/// in configuration-scale units (distances are compared relative to `scale`),
/// `angle_eps` is an absolute tolerance in radians.
struct tol {
  double scale = 1.0;        ///< characteristic length (configuration diameter)
  double rel = 1e-9;         ///< relative tolerance for lengths
  double angle_eps = 1e-9;   ///< absolute tolerance for angles (radians)
  /// Floor for the absolute length tolerance.  Derived from the coordinate
  /// *magnitude* (not the spread): when robots converge, the spread collapses
  /// towards zero while double-precision round-off stays proportional to the
  /// magnitude of the coordinates, so a spread-relative epsilon alone would
  /// stop identifying co-located robots.
  double abs_floor = 1e-300;

  /// Absolute length tolerance.
  [[nodiscard]] double len_eps() const {
    return std::max(rel * std::max(scale, 1e-300), abs_floor);
  }

  // -- length comparisons ----------------------------------------------------
  [[nodiscard]] bool len_zero(double a) const { return std::fabs(a) <= len_eps(); }
  [[nodiscard]] bool len_eq(double a, double b) const { return len_zero(a - b); }
  [[nodiscard]] bool len_lt(double a, double b) const { return a < b - len_eps(); }
  [[nodiscard]] bool len_le(double a, double b) const { return a <= b + len_eps(); }
  /// Three-way compare under tolerance: -1, 0, +1.
  [[nodiscard]] int len_cmp(double a, double b) const {
    if (len_eq(a, b)) return 0;
    return a < b ? -1 : 1;
  }

  // -- angle comparisons -----------------------------------------------------
  [[nodiscard]] bool ang_zero(double a) const { return std::fabs(a) <= angle_eps; }
  [[nodiscard]] bool ang_eq(double a, double b) const { return ang_zero(a - b); }
  /// Angle equality on the circle: treats values near 0 and near 2*pi as equal.
  [[nodiscard]] bool ang_eq_mod(double a, double b, double period) const {
    double d = std::fabs(a - b);
    d = std::fmin(d, std::fabs(d - period));
    return d <= angle_eps;
  }
  [[nodiscard]] int ang_cmp(double a, double b) const {
    if (ang_eq(a, b)) return 0;
    return a < b ? -1 : 1;
  }

  // -- points ------------------------------------------------------------
  [[nodiscard]] bool same_point(vec2 a, vec2 b) const {
    return len_zero(distance(a, b));
  }

  /// A context whose length scale is the diameter of the given point span and
  /// whose absolute floor tracks the coordinate magnitude.
  template <class Range>
  [[nodiscard]] static tol for_points(const Range& pts) {
    double lo_x = 0, hi_x = 0, lo_y = 0, hi_y = 0, mag = 0;
    bool first = true;
    for (const vec2& p : pts) {
      if (first) {
        lo_x = hi_x = p.x;
        lo_y = hi_y = p.y;
        first = false;
      } else {
        lo_x = std::min(lo_x, p.x); hi_x = std::max(hi_x, p.x);
        lo_y = std::min(lo_y, p.y); hi_y = std::max(hi_y, p.y);
      }
      mag = std::max({mag, std::fabs(p.x), std::fabs(p.y)});
    }
    tol t;
    t.scale = std::max({hi_x - lo_x, hi_y - lo_y, 1e-12});
    t.abs_floor = 1e-12 * std::max(mag, 1e-300);
    return t;
  }
};

}  // namespace gather::geom
