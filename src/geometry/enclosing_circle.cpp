#include "geometry/enclosing_circle.h"

#include "obs/profile.h"
#include "util/check.h"

#include <algorithm>
#include <cmath>

namespace gather::geom {

circle circle_from_two(vec2 a, vec2 b) {
  return {midpoint(a, b), 0.5 * distance(a, b)};
}

circle circle_from_three(vec2 a, vec2 b, vec2 c, const tol& t) {
  const double d = 2.0 * cross(b - a, c - a);
  const double span = std::max({distance(a, b), distance(b, c), distance(a, c)});
  if (std::fabs(d) <= t.rel * span * std::max(t.scale, span)) {
    // Collinear: smallest circle spanning the farthest pair.
    circle best = circle_from_two(a, b);
    for (const circle cand : {circle_from_two(a, c), circle_from_two(b, c)}) {
      if (cand.radius > best.radius) best = cand;
    }
    return best;
  }
  const double a2 = norm_sq(a), b2 = norm_sq(b), c2 = norm_sq(c);
  const vec2 center = {
      (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
      (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
  return {center, distance(center, a)};
}

namespace {

circle circle_with_two_boundary(std::span<const vec2> pts, std::size_t end,
                                vec2 p, vec2 q, const tol& t) {
  circle c = circle_from_two(p, q);
  for (std::size_t i = 0; i < end; ++i) {
    if (!c.contains(pts[i], t)) c = circle_from_three(p, q, pts[i], t);
  }
  return c;
}

circle circle_with_one_boundary(std::span<const vec2> pts, std::size_t end,
                                vec2 p, const tol& t) {
  circle c{p, 0.0};
  for (std::size_t i = 0; i < end; ++i) {
    if (!c.contains(pts[i], t)) {
      if (c.radius == 0.0) {
        c = circle_from_two(p, pts[i]);
      } else {
        c = circle_with_two_boundary(pts, i, p, pts[i], t);
      }
    }
  }
  return c;
}

}  // namespace

circle smallest_enclosing_circle(std::span<const vec2> pts, const tol& t) {
  std::size_t last_violator = 0;
  return smallest_enclosing_circle(pts, t, last_violator);
}

circle smallest_enclosing_circle(std::span<const vec2> pts, const tol& t,
                                 std::size_t& last_violator) {
  GATHER_PROF("geom.sec");
  last_violator = 0;
  if (pts.empty()) return {};
  // Deterministic incremental construction (Welzl move-to-front without
  // randomization).  Quadratic in the worst case but n is small (robots).
  circle c{pts[0], 0.0};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!c.contains(pts[i], t)) {
      c = circle_with_one_boundary(pts, i, pts[i], t);
      last_violator = i;
    }
  }
#ifdef GATHER_CHECK_INVARIANTS
  for (const vec2 p : pts) {
    GATHER_CHECK(c.contains(p, t), "sec(C) contains every input point");
  }
#endif
  return c;
}

}  // namespace gather::geom
