#include "geometry/angles.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gather::geom {

double norm_angle(double a) {
  // fmod(a, 2*pi) is the identity for |a| < 2*pi (IEEE fmod is exact), so the
  // common case skips the libm call; the result is bit-identical.
  if (a >= two_pi || a <= -two_pi) a = std::fmod(a, two_pi);
  if (a < 0) a += two_pi;
  // A value infinitesimally below 0 can round to two_pi exactly.
  if (a >= two_pi) a -= two_pi;
  return a;
}

double cw_angle(vec2 ref, vec2 v) {
  // atan2 gives the counter-clockwise angle; clockwise is its negation.
  const double ccw = std::atan2(cross(ref, v), dot(ref, v));
  return norm_angle(-ccw);
}

double cw_angle_at(vec2 u, vec2 c, vec2 v) { return cw_angle(u - c, v - c); }

vec2 rotated_cw_about(vec2 p, vec2 center, double angle) {
  return center + rotated_ccw(p - center, -angle);
}

vec2 rotated_ccw_about(vec2 p, vec2 center, double angle) {
  return center + rotated_ccw(p - center, angle);
}

double angular_separation(vec2 a, vec2 b) {
  return std::fabs(std::atan2(cross(a, b), dot(a, b)));
}

namespace {

/// Representative of the cluster spanning indices [b, e) of the sorted
/// `thetas`; when `seam_from < n`, the trailing chain [seam_from, n) wraps
/// across the 0/2*pi seam into this cluster and contributes with -2*pi.
/// The accumulation order (in-range ascending, then seam elements ascending)
/// reproduces the reference's per-cluster sums bit for bit.
double cluster_rep(const std::vector<double>& thetas, std::size_t b,
                   std::size_t e, std::size_t seam_from, double eps) {
  double s = 0.0;
  std::size_t count = e - b;
  for (std::size_t i = b; i < e; ++i) s += thetas[i];
  if (seam_from < thetas.size()) {
    for (std::size_t i = seam_from; i < thetas.size(); ++i)
      s += thetas[i] - two_pi;
    count += thetas.size() - seam_from;
  }
  double rep = s / static_cast<double>(count);
  // norm_angle is the identity on [0, 2*pi) (its fmod is exact), so the
  // common no-seam case -- mean of values in [0, 2*pi) -- skips it.
  if (rep < 0.0 || rep >= two_pi) rep = norm_angle(rep);
  // A direction within eps of the positive reference axis must read as
  // exactly 0, never as ~2*pi: otherwise the same geometric direction could
  // sort first in one observer's view and last in another's.
  if (two_pi - rep <= eps || rep <= eps) rep = 0.0;
  return rep;
}

}  // namespace

void cluster_angles_into(std::vector<double>& thetas, double eps,
                         std::vector<double>& reps) {
  std::sort(thetas.begin(), thetas.end());
  cluster_presorted_angles_into(thetas, eps, reps);
}

void cluster_presorted_angles_into(const std::vector<double>& thetas,
                                   double eps, std::vector<double>& reps) {
  reps.clear();
  if (thetas.empty()) return;
  const std::size_t n = thetas.size();
  // Chain clustering on the sorted values: a gap > eps starts a new cluster.
  // `last_start` is where the trailing cluster begins; the seam merge folds
  // that cluster into the first one when they touch modulo 2*pi.
  std::size_t last_start = n - 1;
  while (last_start > 0 && thetas[last_start] - thetas[last_start - 1] <= eps)
    --last_start;
  const bool merge_seam =
      last_start > 0 && (thetas.front() + two_pi) - thetas.back() <= eps;
  // First cluster: the leading chain, plus the seam elements when merged.
  std::size_t first_end = 1;
  while (first_end < n && thetas[first_end] - thetas[first_end - 1] <= eps)
    ++first_end;
  reps.push_back(cluster_rep(thetas, 0, first_end, merge_seam ? last_start : n,
                             eps));
  // Middle clusters (and the trailing one when it did not wrap).
  const std::size_t limit = merge_seam ? last_start : n;
  std::size_t b = first_end;
  while (b < limit) {
    std::size_t e = b + 1;
    while (e < limit && thetas[e] - thetas[e - 1] <= eps) ++e;
    reps.push_back(cluster_rep(thetas, b, e, n, eps));
    b = e;
  }
  std::sort(reps.begin(), reps.end());
}

std::vector<double> cluster_angle_values(std::vector<double> thetas, double eps) {
  std::vector<double> reps;
  cluster_angles_into(thetas, eps, reps);
  return reps;
}

namespace {

/// Candidate evaluation shared by `nearest_angle_rep` and
/// `snap_sorted_angles`; `lb` is the lower-bound index of `theta` in `reps`.
/// The cyclically nearest representative is a cyclic neighbour of theta:
/// either a linear neighbour (lb-1, lb) or a seam endpoint (0, m-1) -- the
/// shorter arc from theta to the minimizer cannot contain another distinct
/// representative.  Candidates are evaluated in ascending index order with a
/// strict `<`, so ties resolve to the same value as the reference's linear
/// first-minimum scan (equal-valued duplicates return the same double).
double nearest_rep_from_lb(double theta, const std::vector<double>& reps,
                           std::size_t lb) {
  const std::size_t m = reps.size();
  std::size_t cand[4];
  std::size_t nc = 0;
  const auto add = [&](std::size_t i) {
    if (nc == 0 || cand[nc - 1] != i) cand[nc++] = i;
  };
  add(0);
  if (lb > 0) add(lb - 1);
  if (lb < m) add(lb);
  add(m - 1);
  double best = theta;
  double best_d = two_pi;
  for (std::size_t j = 0; j < nc; ++j) {
    const double r = reps[cand[j]];
    double d = std::fabs(theta - r);
    d = std::min(d, two_pi - d);
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

}  // namespace

double nearest_angle_rep(double theta, const std::vector<double>& reps) {
  if (reps.empty()) return theta;
  const std::size_t lb = static_cast<std::size_t>(
      std::lower_bound(reps.begin(), reps.end(), theta) - reps.begin());
  return nearest_rep_from_lb(theta, reps, lb);
}

void snap_sorted_angles(std::vector<double>& thetas,
                        const std::vector<double>& reps) {
  if (reps.empty()) return;  // nearest_angle_rep keeps theta unchanged
  // Generic configurations cluster into all-singleton chains whose
  // representatives are the input values themselves (a one-element mean is
  // exact), so the snap is the identity whenever the two arrays are bitwise
  // equal: every theta is then at cyclic distance 0 from its own rep, and
  // with m == n the sorted thetas are strictly ascending (an equal-adjacent
  // pair would have chained into one cluster), so that minimizer is unique.
  // memcmp, not operator==, because -0.0 == 0.0 compares true but snapping
  // would rewrite the bits.
  if (reps.size() == thetas.size() &&
      std::memcmp(reps.data(), thetas.data(),
                  reps.size() * sizeof(double)) == 0) {
    return;
  }
  // For ascending thetas the lower-bound index is monotone, so one merge
  // pointer replaces the per-element binary search.
  std::size_t lb = 0;
  for (double& theta : thetas) {
    while (lb < reps.size() && reps[lb] < theta) ++lb;
    theta = nearest_rep_from_lb(theta, reps, lb);
  }
}

namespace detail {

std::vector<double> cluster_angle_values_reference(std::vector<double> thetas,
                                                   double eps) {
  if (thetas.empty()) return {};
  std::sort(thetas.begin(), thetas.end());
  std::vector<std::vector<double>> groups;
  for (double a : thetas) {
    if (!groups.empty() && a - groups.back().back() <= eps) {
      groups.back().push_back(a);
    } else {
      groups.push_back({a});
    }
  }
  // Merge across the seam: the last cluster wraps onto the first.
  if (groups.size() > 1 &&
      (groups.front().front() + two_pi) - groups.back().back() <= eps) {
    for (double a : groups.back()) groups.front().push_back(a - two_pi);
    groups.pop_back();
  }
  std::vector<double> reps;
  reps.reserve(groups.size());
  for (const auto& g : groups) {
    double s = 0.0;
    for (double a : g) s += a;
    double rep = norm_angle(s / static_cast<double>(g.size()));
    if (two_pi - rep <= eps || rep <= eps) rep = 0.0;
    reps.push_back(rep);
  }
  std::sort(reps.begin(), reps.end());
  return reps;
}

double nearest_angle_rep_reference(double theta, const std::vector<double>& reps) {
  double best = theta;
  double best_d = two_pi;
  for (double r : reps) {
    double d = std::fabs(theta - r);
    d = std::min(d, two_pi - d);
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

}  // namespace detail

}  // namespace gather::geom
