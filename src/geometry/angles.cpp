#include "geometry/angles.h"

#include <algorithm>
#include <cmath>

namespace gather::geom {

double norm_angle(double a) {
  a = std::fmod(a, two_pi);
  if (a < 0) a += two_pi;
  // fmod of a value infinitesimally below 0 can round to two_pi exactly.
  if (a >= two_pi) a -= two_pi;
  return a;
}

double cw_angle(vec2 ref, vec2 v) {
  // atan2 gives the counter-clockwise angle; clockwise is its negation.
  const double ccw = std::atan2(cross(ref, v), dot(ref, v));
  return norm_angle(-ccw);
}

double cw_angle_at(vec2 u, vec2 c, vec2 v) { return cw_angle(u - c, v - c); }

vec2 rotated_cw_about(vec2 p, vec2 center, double angle) {
  return center + rotated_ccw(p - center, -angle);
}

vec2 rotated_ccw_about(vec2 p, vec2 center, double angle) {
  return center + rotated_ccw(p - center, angle);
}

double angular_separation(vec2 a, vec2 b) {
  return std::fabs(std::atan2(cross(a, b), dot(a, b)));
}

std::vector<double> cluster_angle_values(std::vector<double> thetas, double eps) {
  if (thetas.empty()) return {};
  std::sort(thetas.begin(), thetas.end());
  std::vector<std::vector<double>> groups;
  for (double a : thetas) {
    if (!groups.empty() && a - groups.back().back() <= eps) {
      groups.back().push_back(a);
    } else {
      groups.push_back({a});
    }
  }
  // Merge across the seam: the last cluster wraps onto the first.
  if (groups.size() > 1 &&
      (groups.front().front() + two_pi) - groups.back().back() <= eps) {
    for (double a : groups.back()) groups.front().push_back(a - two_pi);
    groups.pop_back();
  }
  std::vector<double> reps;
  reps.reserve(groups.size());
  for (const auto& g : groups) {
    double s = 0.0;
    for (double a : g) s += a;
    double rep = norm_angle(s / static_cast<double>(g.size()));
    // A direction within eps of the positive reference axis must read as
    // exactly 0, never as ~2*pi: otherwise the same geometric direction could
    // sort first in one observer's view and last in another's.
    if (two_pi - rep <= eps || rep <= eps) rep = 0.0;
    reps.push_back(rep);
  }
  std::sort(reps.begin(), reps.end());
  return reps;
}

double nearest_angle_rep(double theta, const std::vector<double>& reps) {
  double best = theta;
  double best_d = two_pi;
  for (double r : reps) {
    double d = std::fabs(theta - r);
    d = std::min(d, two_pi - d);
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

}  // namespace gather::geom
