// Umbrella header for the geometry kernel (system S1 in DESIGN.md).
#pragma once

#include "geometry/angles.h"
#include "geometry/calipers.h"
#include "geometry/convex_hull.h"
#include "geometry/enclosing_circle.h"
#include "geometry/exact.h"
#include "geometry/predicates.h"
#include "geometry/tolerance.h"
#include "geometry/transform.h"
#include "geometry/vec2.h"
