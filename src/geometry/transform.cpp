#include "geometry/transform.h"

#include <cmath>
#include <stdexcept>

namespace gather::geom {

similarity::similarity(double angle, double scale, vec2 offset)
    : cos_(std::cos(angle)), sin_(std::sin(angle)), scale_(scale), offset_(offset) {
  if (!(scale > 0.0)) throw std::invalid_argument("similarity: scale must be positive");
}

}  // namespace gather::geom
