#include "geometry/transform.h"

#include <cmath>
#include <stdexcept>

#include "geometry/kernels.h"

namespace gather::geom {

similarity::similarity(double angle, double scale, vec2 offset)
    : cos_(std::cos(angle)), sin_(std::sin(angle)), scale_(scale), offset_(offset) {
  if (!(scale > 0.0)) throw std::invalid_argument("similarity: scale must be positive");
}

void similarity::apply_batch(const vec2* in, std::size_t n, vec2* out) const {
  kernels::similarity_apply_batch(cos_, sin_, scale_, offset_, in, n, out);
}

}  // namespace gather::geom
