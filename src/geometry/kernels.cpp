#include "geometry/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "geometry/angles.h"

namespace gather::geom::kernels {

// The AVX2 translation unit (kernels_avx2.cpp, compiled with -mavx2
// -ffp-contract=off) exports its lane bodies here; the define comes from the
// geometry CMakeLists when the toolchain accepts -mavx2 on an x86-64 target.
#ifdef GATHER_HAVE_AVX2_TU
namespace detail {
void distance_prep_avx2(const double* xs, const double* ys, std::size_t n,
                        double px, double py, double* dx, double* dy);
void cross_dot_about_avx2(const double* xs, const double* ys, std::size_t n,
                          double px, double py, double rx, double ry,
                          double* cr, double* dt);
void divide_batch_avx2(const double* num, std::size_t n, double denom,
                       double* out);
void similarity_apply_batch_avx2(double c, double s, double scale, vec2 off,
                                 const vec2* in, std::size_t n, vec2* out);
}  // namespace detail
#endif

namespace {

/// Dispatch state: -1 unresolved, 0 scalar, 1 avx2.  Resolution reads the
/// GATHER_FORCE_SCALAR environment variable once, then probes the CPU.
std::atomic<int> g_path{-1};

int resolve_path() {
#ifdef GATHER_HAVE_AVX2_TU
  if (const char* env = std::getenv("GATHER_FORCE_SCALAR");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    return 0;
  }
  return __builtin_cpu_supports("avx2") ? 1 : 0;
#else
  return 0;
#endif
}

}  // namespace

bool avx2_active() {
  int p = g_path.load(std::memory_order_relaxed);
  if (p < 0) {
    p = resolve_path();
    g_path.store(p, std::memory_order_relaxed);
  }
  return p == 1;
}

const char* active_path() { return avx2_active() ? "avx2" : "scalar"; }

void set_force_scalar(bool force) {
  g_path.store(force ? 0 : resolve_path(), std::memory_order_relaxed);
}

void distance_row(const double* xs, const double* ys, std::size_t n,
                  double px, double py, double* out) {
#ifdef GATHER_HAVE_AVX2_TU
  if (avx2_active()) {
    // Batch the subtractions through the vector unit; the hypot core is a
    // libm call either way (pinned geom::distance semantics), so the vector
    // path only prepares dx/dy.  `out` doubles as the dx scratch; dy lives
    // in a fixed-size stack tile.
    constexpr std::size_t tile = 1024;
    double dy[tile];
    for (std::size_t b = 0; b < n; b += tile) {
      const std::size_t m = n - b < tile ? n - b : tile;
      detail::distance_prep_avx2(xs + b, ys + b, m, px, py, out + b, dy);
      for (std::size_t j = 0; j < m; ++j) {
        out[b + j] = std::hypot(out[b + j], dy[j]);
      }
    }
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = std::hypot(xs[j] - px, ys[j] - py);
  }
}

void cross_dot_about(const double* xs, const double* ys, std::size_t n,
                     double px, double py, double rx, double ry,
                     double* cr, double* dt) {
#ifdef GATHER_HAVE_AVX2_TU
  if (avx2_active()) {
    detail::cross_dot_about_avx2(xs, ys, n, px, py, rx, ry, cr, dt);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    const double dx = xs[j] - px;
    const double dy = ys[j] - py;
    cr[j] = rx * dy - ry * dx;
    dt[j] = rx * dx + ry * dy;
  }
}

void cw_angles_from_cross_dot(const double* cr, const double* dt,
                              std::size_t n, double* angles) {
  // Scalar on both paths: the atan2 core is pinned to libm, and norm_angle
  // must match geom::cw_angle bit for bit.
  for (std::size_t j = 0; j < n; ++j) {
    angles[j] = norm_angle(-std::atan2(cr[j], dt[j]));
  }
}

void divide_batch(const double* num, std::size_t n, double denom,
                  double* out) {
#ifdef GATHER_HAVE_AVX2_TU
  if (avx2_active()) {
    detail::divide_batch_avx2(num, n, denom, out);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) out[j] = num[j] / denom;
}

void angle_keys(const double* angles, std::size_t n, std::uint64_t* keys) {
  // Pure integer moves; the compiler vectorizes this loop fine on its own.
  for (std::size_t j = 0; j < n; ++j) keys[j] = angle_key(angles[j]);
}

void sort_angle_keys(std::vector<util::key_idx>& a,
                     std::vector<util::key_idx>& radix_tmp,
                     std::vector<std::uint32_t>& bucket_scratch) {
  const std::size_t n = a.size();
  // Small arrays: the radix sort's fixed costs already beat bucketing.
  if (n < 256) {
    util::radix_sort_key_idx(a, radix_tmp);
    return;
  }
  // One counting pass over value buckets.  Keys are angle_key bit patterns
  // of doubles in [0, 2*pi): non-negative, so bit order equals value order,
  // and the bucket map below (scale by a positive constant, truncate) is
  // monotone in the value.  The scatter visits records in input order, so
  // equal keys keep their relative order; the insertion fixup uses a strict
  // comparison and never reorders equal keys.  Both properties together make
  // the result stable and therefore byte-identical to the LSD radix sort.
  std::size_t nb = std::bit_ceil(n);
  if (nb < 256) nb = 256;
  if (nb > 65536) nb = 65536;
  const double to_bucket = static_cast<double>(nb) / two_pi;
  const auto bucket_of = [&](std::uint64_t key) {
    const std::size_t b = static_cast<std::size_t>(
        std::bit_cast<double>(key) * to_bucket);
    return b < nb ? b : nb - 1;
  };
  bucket_scratch.assign(nb + 1, 0);
  for (const util::key_idx& e : a) ++bucket_scratch[bucket_of(e.key) + 1];
  for (std::size_t b = 1; b <= nb; ++b) {
    bucket_scratch[b] += bucket_scratch[b - 1];
  }
  radix_tmp.resize(n);
  for (const util::key_idx& e : a) {
    radix_tmp[bucket_scratch[bucket_of(e.key)]++] = e;
  }
  // Buckets hold ~1 record each, so this insertion pass is one near-linear
  // sweep; records only ever move within or into an adjacent bucket's range.
  for (std::size_t i = 1; i < n; ++i) {
    const util::key_idx e = radix_tmp[i];
    std::size_t j = i;
    while (j > 0 && radix_tmp[j - 1].key > e.key) {
      radix_tmp[j] = radix_tmp[j - 1];
      --j;
    }
    radix_tmp[j] = e;
  }
  a.swap(radix_tmp);
}

void sort_polar_recs(std::vector<polar_rec>& recs, std::vector<polar_rec>& tmp,
                     std::vector<std::uint32_t>& bucket_scratch) {
  const std::size_t m = recs.size();
  if (m < 2) return;
  // Tiny arrays: a stable insertion sort (strict `>` never reorders equal
  // keys) without any bucket setup cost.
  if (m < 48) {
    for (std::size_t i = 1; i < m; ++i) {
      const polar_rec e = recs[i];
      std::size_t j = i;
      while (j > 0 && recs[j - 1].key > e.key) {
        recs[j] = recs[j - 1];
        --j;
      }
      recs[j] = e;
    }
    return;
  }
  // Same sort structure as sort_angle_keys, on 16-byte records: one counting
  // pass over value buckets, a stable in-order scatter, and a near-sorted
  // insertion fixup.  Keys are angle_key bit patterns of doubles in
  // [0, 2*pi) -- non-negative, so bit order equals value order and the
  // bucket map (scale by a positive constant, truncate, clamp) is monotone
  // in the value; equal keys land in one bucket in input order, and the
  // strict fixup comparison keeps them there.  Stable, hence byte-identical
  // to the stable radix order the reference pipeline sorts in.  The ~4x
  // bucket overallocation trades a slightly longer (SIMD-fast) counting pass
  // for mostly-singleton buckets, which keeps the fixup sweep near-linear.
  std::size_t nb = std::bit_ceil(m) << 2;
  if (nb < 256) nb = 256;
  if (nb > 262144) nb = 262144;
  const double to_bucket = static_cast<double>(nb) / two_pi;
  const auto bucket_of = [&](std::uint64_t key) {
    const std::size_t b =
        static_cast<std::size_t>(std::bit_cast<double>(key) * to_bucket);
    return b < nb ? b : nb - 1;
  };
  bucket_scratch.assign(nb + 1, 0);
  for (const polar_rec& e : recs) ++bucket_scratch[bucket_of(e.key) + 1];
  for (std::size_t b = 1; b <= nb; ++b) {
    bucket_scratch[b] += bucket_scratch[b - 1];
  }
  tmp.resize(m);
  for (const polar_rec& e : recs) {
    tmp[bucket_scratch[bucket_of(e.key)]++] = e;
  }
  for (std::size_t i = 1; i < m; ++i) {
    const polar_rec e = tmp[i];
    std::size_t j = i;
    while (j > 0 && tmp[j - 1].key > e.key) {
      tmp[j] = tmp[j - 1];
      --j;
    }
    tmp[j] = e;
  }
  recs.swap(tmp);
}

bool snap_is_identity_recs(const polar_rec* recs, std::size_t n, double eps) {
  if (n == 0) return true;
  // Mirrors snap_is_identity below, reading each angle straight out of its
  // record key (keys are the angle bit patterns).
  if (two_pi - std::bit_cast<double>(recs[n - 1].key) <= eps) return false;
  const double front = std::bit_cast<double>(recs[0].key);
  if (front <= eps && front != 0.0) return false;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::bit_cast<double>(recs[i].key) -
            std::bit_cast<double>(recs[i - 1].key) <=
        eps) {
      return false;
    }
  }
  return true;
}

bool snap_is_identity(const double* thetas, std::size_t n, double eps) {
  if (n == 0) return true;
  // Back clear of the seam: no seam merge can reach the first cluster and no
  // representative zero-snaps from above.
  if (two_pi - thetas[n - 1] <= eps) return false;
  // Front either exactly 0.0 (its singleton representative zero-snaps to
  // itself) or clear of the seam from below.
  if (thetas[0] <= eps && thetas[0] != 0.0) return false;
  // Every adjacent gap exceeds eps: all clusters are singletons, and a
  // one-element mean reproduces its member exactly.
  for (std::size_t i = 1; i < n; ++i) {
    if (thetas[i] - thetas[i - 1] <= eps) return false;
  }
  return true;
}

void similarity_apply_batch(double c, double s, double scale, vec2 off,
                            const vec2* in, std::size_t n, vec2* out) {
#ifdef GATHER_HAVE_AVX2_TU
  if (avx2_active()) {
    detail::similarity_apply_batch_avx2(c, s, scale, off, in, n, out);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    const vec2 p = in[j];
    out[j] = {scale * (c * p.x - s * p.y) + off.x,
              scale * (s * p.x + c * p.y) + off.y};
  }
}

}  // namespace gather::geom::kernels
