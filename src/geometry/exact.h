// Exact-sign geometric predicates via error-free float transformations.
//
// The library's working predicates (geometry/predicates.h) are *tolerant*:
// they treat nearly-degenerate inputs as degenerate, which is what the robot
// model wants (robots cannot measure infinitely precisely, and classification
// must be stable under per-robot frames).  For verification, however, it is
// useful to know the *exact* sign of the underlying determinant.  This module
// computes it with Dekker/Knuth error-free transformations (two_sum,
// two_product) and a Shewchuk-style expansion of the 2x2 determinant -- the
// sign is exact for all double inputs, with no arbitrary precision library.
//
// Used by tests to cross-check the tolerant predicates on random and
// adversarial inputs, and available to applications that need a ground-truth
// orientation (e.g. validating convex hulls).
#pragma once

#include "geometry/vec2.h"

namespace gather::geom {

/// A non-overlapping two-term expansion x = hi + lo with |lo| <= ulp(hi)/2.
struct expansion2 {
  double hi = 0.0;
  double lo = 0.0;
};

/// Error-free sum: a + b = result.hi + result.lo exactly.
[[nodiscard]] expansion2 two_sum(double a, double b);

/// Error-free product: a * b = result.hi + result.lo exactly (FMA-free).
[[nodiscard]] expansion2 two_product(double a, double b);

/// Exact sign of a*d - b*c: -1, 0 or +1.
[[nodiscard]] int exact_det2_sign(double a, double b, double c, double d);

/// Exact sign of the orientation of the triangle (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 exactly collinear.
/// Evaluates cross(b - a, c - a) -- note the subtractions themselves are
/// rounded, so this is the exact orientation of the *rounded* difference
/// vectors; for robot coordinates produced by the simulator this is the
/// meaningful ground truth.
[[nodiscard]] int exact_orientation(vec2 a, vec2 b, vec2 c);

}  // namespace gather::geom
