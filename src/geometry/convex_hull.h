// Convex hull (Andrew's monotone chain), used for the paper's CH(Q) notation
// and for identifying the extreme points of linear configurations.
#pragma once

#include <span>
#include <vector>

#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::geom {

/// Convex hull of a point set, returned counter-clockwise starting from the
/// lexicographically smallest vertex; collinear boundary points are dropped.
/// Degenerate inputs return their extreme points (0, 1 or 2 vertices).
[[nodiscard]] std::vector<vec2> convex_hull(std::span<const vec2> pts, const tol& t);

/// True when `p` is a vertex of the convex hull of `pts`.
[[nodiscard]] bool is_hull_vertex(vec2 p, std::span<const vec2> pts, const tol& t);

/// True when `p` lies inside or on the boundary of the convex hull of `pts`.
[[nodiscard]] bool in_hull(vec2 p, std::span<const vec2> pts, const tol& t);

}  // namespace gather::geom
