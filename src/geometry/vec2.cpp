#include "geometry/vec2.h"

#include <ostream>

namespace gather::geom {

std::ostream& operator<<(std::ostream& os, vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace gather::geom
