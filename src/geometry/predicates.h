// Tolerant geometric predicates: orientation, collinearity, betweenness,
// ray membership.  These implement the paper's notations line(u,v), (u,v),
// [u,v] and HF(u,v) (Sec. II) under the shared tolerance context.
#pragma once

#include <optional>
#include <span>

#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::geom {

/// Sign of the orientation of the triangle (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 collinear (within tolerance).
[[nodiscard]] int orientation(vec2 a, vec2 b, vec2 c, const tol& t);

/// True when all points lie on one line (within tolerance).
/// Sets of fewer than three points are trivially collinear.
[[nodiscard]] bool all_collinear(std::span<const vec2> pts, const tol& t);

/// Execution trace of one `all_collinear` run, recorded so an incremental
/// caller can prove a later run over a slightly different point set would
/// take the same decisions (src/config's delta path).  The baseline is the
/// line through `a` (= pts[0]) and `b` (the first point at the maximum
/// distance `best_d` from `a`); when the result was false, `off_line` is the
/// first point scanned with a non-zero orientation against that baseline.
struct collinear_witness {
  vec2 a{};
  vec2 b{};
  double best_d = -1.0;
  vec2 off_line{};
  bool has_off_line = false;
  bool valid = false;
};

/// `all_collinear` that also records its execution witness.  Bit-identical
/// result to the plain overload.
[[nodiscard]] bool all_collinear(std::span<const vec2> pts, const tol& t,
                                 collinear_witness& w);

/// Distance from point `p` to the infinite line through `a` and `b`.
[[nodiscard]] double distance_to_line(vec2 p, vec2 a, vec2 b);

/// True when `p` lies strictly inside the open segment (a, b).
[[nodiscard]] bool in_open_segment(vec2 p, vec2 a, vec2 b, const tol& t);

/// True when `p` lies on the closed segment [a, b].
[[nodiscard]] bool in_closed_segment(vec2 p, vec2 a, vec2 b, const tol& t);

/// True when `p` lies on the paper's half-line HF(u, v): the half-line that
/// starts at `u` (excluding `u` itself) and passes through `v`.
[[nodiscard]] bool on_half_line(vec2 p, vec2 u, vec2 v, const tol& t);

/// Intersection of line(a1, a2) with line(b1, b2); nullopt when parallel
/// (within tolerance).
[[nodiscard]] std::optional<vec2> line_intersection(vec2 a1, vec2 a2, vec2 b1,
                                                    vec2 b2, const tol& t);

}  // namespace gather::geom
