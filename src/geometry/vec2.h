// Basic 2-D vector/point type used throughout the library.
//
// Robots are modelled as points on the Euclidean plane (paper, Sec. II).
// `vec2` is a plain value type: cheap to copy, trivially relocatable, and
// usable in constexpr contexts wherever the math allows.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace gather::geom {

/// A point or displacement in the plane.
struct vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr vec2 operator+(vec2 a, vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr vec2 operator-(vec2 a, vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr vec2 operator*(double s, vec2 a) { return {s * a.x, s * a.y}; }
  friend constexpr vec2 operator*(vec2 a, double s) { return {s * a.x, s * a.y}; }
  friend constexpr vec2 operator/(vec2 a, double s) { return {a.x / s, a.y / s}; }
  constexpr vec2 operator-() const { return {-x, -y}; }
  constexpr vec2& operator+=(vec2 b) { x += b.x; y += b.y; return *this; }
  constexpr vec2& operator-=(vec2 b) { x -= b.x; y -= b.y; return *this; }
  constexpr vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  /// Exact bitwise comparison; use geom::tol for approximate comparisons.
  friend constexpr bool operator==(vec2 a, vec2 b) = default;
  /// Lexicographic (x then y) order, used only for deterministic canonical
  /// sorting of point sets, never for geometric decisions.
  friend constexpr auto operator<=>(vec2 a, vec2 b) = default;
};

[[nodiscard]] constexpr double dot(vec2 a, vec2 b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 3-D cross product; positive when `b` lies
/// counter-clockwise of `a` in the standard mathematical orientation.
[[nodiscard]] constexpr double cross(vec2 a, vec2 b) { return a.x * b.y - a.y * b.x; }

[[nodiscard]] inline double norm(vec2 a) { return std::hypot(a.x, a.y); }
[[nodiscard]] constexpr double norm_sq(vec2 a) { return a.x * a.x + a.y * a.y; }
[[nodiscard]] inline double distance(vec2 a, vec2 b) { return norm(b - a); }
[[nodiscard]] constexpr double distance_sq(vec2 a, vec2 b) { return norm_sq(b - a); }

/// Unit vector in the direction of `a`; `a` must be non-zero.
[[nodiscard]] inline vec2 normalized(vec2 a) {
  const double n = norm(a);
  return {a.x / n, a.y / n};
}

/// Point at parameter `t` on the segment from `a` to `b` (t=0 -> a, t=1 -> b).
[[nodiscard]] constexpr vec2 lerp(vec2 a, vec2 b, double t) {
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

[[nodiscard]] constexpr vec2 midpoint(vec2 a, vec2 b) { return lerp(a, b, 0.5); }

/// Rotate `a` counter-clockwise by `angle` radians about the origin.
[[nodiscard]] inline vec2 rotated_ccw(vec2 a, double angle) {
  const double c = std::cos(angle), s = std::sin(angle);
  return {c * a.x - s * a.y, s * a.x + c * a.y};
}

/// Perpendicular vector (counter-clockwise quarter turn).
[[nodiscard]] constexpr vec2 perp_ccw(vec2 a) { return {-a.y, a.x}; }

std::ostream& operator<<(std::ostream& os, vec2 v);

}  // namespace gather::geom
