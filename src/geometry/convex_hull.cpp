#include "geometry/convex_hull.h"

#include <algorithm>

#include "geometry/predicates.h"
#include "util/check.h"

namespace gather::geom {

std::vector<vec2> convex_hull(std::span<const vec2> pts, const tol& t) {
  std::vector<vec2> p(pts.begin(), pts.end());
  std::sort(p.begin(), p.end());
  p.erase(std::unique(p.begin(), p.end(),
                      [&](vec2 a, vec2 b) { return t.same_point(a, b); }),
          p.end());
  const std::size_t n = p.size();
  if (n <= 1) return p;
  if (n == 2) return p;

  std::vector<vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && orientation(hull[k - 2], hull[k - 1], p[i], t) <= 0) --k;
    hull[k++] = p[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower && orientation(hull[k - 2], hull[k - 1], p[i], t) <= 0) --k;
    hull[k++] = p[i];
  }
  hull.resize(k - 1);  // last point equals the first
  if (hull.size() < 3) {
    // All points collinear: keep the two extremes.
    return {p.front(), p.back()};
  }
#ifdef GATHER_CHECK_INVARIANTS
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const vec2 a = hull[i];
    const vec2 b = hull[(i + 1) % hull.size()];
    const vec2 c = hull[(i + 2) % hull.size()];
    GATHER_CHECK(orientation(a, b, c, t) > 0,
                 "CH(Q) is counter-clockwise and strictly convex");
  }
#endif
  return hull;
}

bool is_hull_vertex(vec2 p, std::span<const vec2> pts, const tol& t) {
  const auto hull = convex_hull(pts, t);
  return std::any_of(hull.begin(), hull.end(),
                     [&](vec2 v) { return t.same_point(v, p); });
}

bool in_hull(vec2 p, std::span<const vec2> pts, const tol& t) {
  const auto hull = convex_hull(pts, t);
  if (hull.empty()) return false;
  if (hull.size() == 1) return t.same_point(p, hull[0]);
  if (hull.size() == 2) return in_closed_segment(p, hull[0], hull[1], t);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const vec2 a = hull[i];
    const vec2 b = hull[(i + 1) % hull.size()];
    if (orientation(a, b, p, t) < 0) return false;  // hull is counter-clockwise
  }
  return true;
}

}  // namespace gather::geom
