// Smallest enclosing circle (Welzl's algorithm), the paper's sec(C).
//
// The center of sec(U(C)) anchors the view definition (Def. 2) and is the
// canonical candidate for the center of symmetry/regularity of symmetric
// configurations, so it must be computed deterministically: this
// implementation uses the iterative move-to-front variant with a fixed
// processing order, which yields identical results for identical inputs.
#pragma once

#include <span>
#include <vector>

#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::geom {

struct circle {
  vec2 center;
  double radius = 0.0;

  [[nodiscard]] bool contains(vec2 p, const tol& t) const {
    return t.len_le(distance(p, center), radius);
  }
  [[nodiscard]] bool on_boundary(vec2 p, const tol& t) const {
    return t.len_eq(distance(p, center), radius);
  }
};

/// Circle through two diametrically opposite points.
[[nodiscard]] circle circle_from_two(vec2 a, vec2 b);

/// Circumscribed circle of a (non-degenerate) triangle.  For collinear
/// triples, falls back to the smallest circle spanning the extreme pair.
[[nodiscard]] circle circle_from_three(vec2 a, vec2 b, vec2 c, const tol& t);

/// Smallest circle enclosing all points.  Empty input yields a zero circle.
[[nodiscard]] circle smallest_enclosing_circle(std::span<const vec2> pts, const tol& t);

/// `smallest_enclosing_circle` that also reports the index of the last
/// top-level restart of the incremental construction (0 when the very first
/// point already determined the circle).  After that index the circle never
/// changed -- an incremental caller can keep the cached circle for a point
/// set that is identical up to `last_violator` and whose new points are all
/// contained in it (src/config's delta path; the bit-identity argument is
/// spelled out in docs/PERFORMANCE.md).
[[nodiscard]] circle smallest_enclosing_circle(std::span<const vec2> pts,
                                               const tol& t,
                                               std::size_t& last_violator);

}  // namespace gather::geom
