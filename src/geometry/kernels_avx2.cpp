// AVX2 lane bodies for the batch kernels (see kernels.h for the contract).
//
// This translation unit is compiled with -mavx2 -ffp-contract=off and is the
// only one in the library allowed to use vector intrinsics.  Bit-exactness
// discipline: only IEEE-exact operations (_mm256_{add,sub,mul,div}_pd,
// addsub, permutes and moves) -- never FMA, never approximate reciprocals --
// so every lane rounds exactly like the scalar statement it replaces.  The
// scalar tails below must stay literal copies of the scalar fallbacks in
// kernels.cpp: with contraction off they compile to the same IEEE ops.
#include <cstddef>

#include <immintrin.h>

#include "geometry/kernels.h"

namespace gather::geom::kernels::detail {

void distance_prep_avx2(const double* xs, const double* ys, std::size_t n,
                        double px, double py, double* dx, double* dy) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dx + j, _mm256_sub_pd(_mm256_loadu_pd(xs + j), vpx));
    _mm256_storeu_pd(dy + j, _mm256_sub_pd(_mm256_loadu_pd(ys + j), vpy));
  }
  for (; j < n; ++j) {
    dx[j] = xs[j] - px;
    dy[j] = ys[j] - py;
  }
}

void cross_dot_about_avx2(const double* xs, const double* ys, std::size_t n,
                          double px, double py, double rx, double ry,
                          double* cr, double* dt) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  const __m256d vrx = _mm256_set1_pd(rx);
  const __m256d vry = _mm256_set1_pd(ry);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + j), vpx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + j), vpy);
    _mm256_storeu_pd(
        cr + j,
        _mm256_sub_pd(_mm256_mul_pd(vrx, dy), _mm256_mul_pd(vry, dx)));
    _mm256_storeu_pd(
        dt + j,
        _mm256_add_pd(_mm256_mul_pd(vrx, dx), _mm256_mul_pd(vry, dy)));
  }
  for (; j < n; ++j) {
    const double dx = xs[j] - px;
    const double dy = ys[j] - py;
    cr[j] = rx * dy - ry * dx;
    dt[j] = rx * dx + ry * dy;
  }
}

void divide_batch_avx2(const double* num, std::size_t n, double denom,
                       double* out) {
  const __m256d vd = _mm256_set1_pd(denom);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_div_pd(_mm256_loadu_pd(num + j), vd));
  }
  for (; j < n; ++j) out[j] = num[j] / denom;
}

void similarity_apply_batch_avx2(double c, double s, double scale, vec2 off,
                                 const vec2* in, std::size_t n, vec2* out) {
  // vec2 is a pair of doubles, so the arrays read as interleaved x,y lanes.
  // For v = [x0, y0, x1, y1] and its in-lane swap [y0, x0, y1, x1], addsub
  // yields even lanes c*x - s*y and odd lanes c*y + s*x; IEEE addition is
  // commutative, so the odd lanes match the scalar s*x + c*y bit for bit.
  const double* src = reinterpret_cast<const double*>(in);
  double* dst = reinterpret_cast<double*>(out);
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d vscale = _mm256_set1_pd(scale);
  const __m256d voff = _mm256_setr_pd(off.x, off.y, off.x, off.y);
  const std::size_t lanes = 2 * n;
  std::size_t j = 0;
  for (; j + 4 <= lanes; j += 4) {
    const __m256d v = _mm256_loadu_pd(src + j);
    const __m256d swapped = _mm256_permute_pd(v, 0b0101);
    const __m256d rotated =
        _mm256_addsub_pd(_mm256_mul_pd(vc, v), _mm256_mul_pd(vs, swapped));
    _mm256_storeu_pd(dst + j,
                     _mm256_add_pd(_mm256_mul_pd(vscale, rotated), voff));
  }
  for (std::size_t i = j / 2; i < n; ++i) {
    const vec2 p = in[i];
    out[i] = {scale * (c * p.x - s * p.y) + off.x,
              scale * (s * p.x + c * p.y) + off.y};
  }
}

}  // namespace gather::geom::kernels::detail
