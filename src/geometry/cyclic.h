// Cyclic-string kernels for rotational symmetry.
//
// The paper's symmetry objects -- sym(C) (Def. 3) and the periodicity of the
// string of angles (Defs. 4-5) -- are rotation properties of a cyclic
// sequence of symbols.  This header provides the two classic linear-time
// primitives on integer symbol strings: Booth's algorithm for the
// lexicographically least rotation (a canonical starting point every robot
// can agree on) and the minimal cyclic period via a Z-function self-search on
// the doubled string.  `config::symmetry` quantizes the angular order about
// the SEC center into such a string and reads sym(C) off its rotation order
// in O(n log n) total, replacing the O(n^3) all-pairs view comparison.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace gather::geom {

/// Index k minimizing the rotation s[k], s[k+1], ..., s[k-1]
/// lexicographically (Booth's algorithm, O(m)).  Returns 0 for m < 2.
[[nodiscard]] std::size_t booth_minimal_rotation(
    const std::vector<std::uint64_t>& s);

/// Smallest p > 0 such that s[i] == s[(i + p) mod m] for all i -- the minimal
/// cyclic period; p always divides m.  Computed as the first position p with
/// Z(s+s)[p] >= m.  Returns m for m < 2 (so 0 for the empty string).
[[nodiscard]] std::size_t minimal_cyclic_period(
    const std::vector<std::uint64_t>& s);

/// m / minimal_cyclic_period(s): the order of the cyclic rotation group of
/// the string (how many rotations map it onto itself, identity included).
/// Returns 1 for m < 2.
[[nodiscard]] std::size_t cyclic_rotation_order(
    const std::vector<std::uint64_t>& s);

/// `s` rotated to start at its Booth index: the canonical representative of
/// the rotation class, equal for two strings iff they are rotations of each
/// other.
[[nodiscard]] std::vector<std::uint64_t> canonical_rotation(
    const std::vector<std::uint64_t>& s);

}  // namespace gather::geom
