// Uniform hash grid over 2-D points: O(1) expected insert / remove / move
// and tolerance-ball queries that scan only the 3x3 cell block around the
// query point.
//
// The grid is the index half of the delta-aware configuration calculus: the
// greedy canonicalization pass uses it to find the first matching cluster
// without scanning all of them, and the per-round delta path uses it for
// multiplicity detection and nearest-structure queries in O(moved robots)
// instead of O(n^2).
//
// Contract: every tolerance query takes the `tol` explicitly and is correct
// for any tolerance with 2 * t.len_eps() <= cell() -- the tolerance ball
// around the query point then spans at most one cell boundary per axis, so
// the 3x3 block is a superset of every possible match.  Callers that derive
// the cell edge from the same `tol` (cell = 2 * len_eps) satisfy this by
// construction.
//
// Entries are identified by stable handles.  `build()` inserts points in
// order into an empty grid, so handle i is point i; afterwards handles
// survive `move()` and are recycled by `remove()`/`insert()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::geom {

class spatial_grid {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  spatial_grid() = default;

  /// Empties the grid and sets the cell edge (must be > 0).  All previously
  /// acquired capacity -- entry slots and the cell table -- is kept, so a
  /// reset + rebuild cycle at steady state allocates nothing.
  void reset(double cell);

  /// reset(cell), then insert `pts` in order: entry handle i == index i.
  void build(std::span<const vec2> pts, double cell);

  [[nodiscard]] double cell() const { return cell_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Inserts a point and returns its handle.  Handles freed by `remove()`
  /// are recycled smallest-free-first is NOT guaranteed; treat the value as
  /// opaque except after `build()`.
  std::size_t insert(vec2 p);

  /// Removes the entry behind `h` (which must be live).
  void remove(std::size_t h);

  /// Relocates a live entry; equivalent to remove + insert but keeps `h`.
  void move(std::size_t h, vec2 p);

  [[nodiscard]] vec2 position(std::size_t h) const { return pos_[h]; }

  /// Handle of an entry at exactly (bitwise) `p`, or npos.  Scans only the
  /// cell containing `p`, so it is NOT a tolerance query.
  [[nodiscard]] std::size_t find_exact(vec2 p) const;

  /// Smallest handle h with t.same_point(position(h), p), or npos.  With
  /// sequential build() handles, this is the first match in input order --
  /// the greedy-clustering join rule.
  [[nodiscard]] std::size_t min_handle_match(vec2 p, const tol& t) const;

  /// Handle of the lexicographically smallest matching position (ties on
  /// position broken towards the smaller handle), or npos.  Over a grid of
  /// lex-sorted points this reproduces "first match in sorted order".
  [[nodiscard]] std::size_t lex_min_match(vec2 p, const tol& t) const;

  /// Number of entries with t.same_point(position(h), p).
  [[nodiscard]] std::size_t count_matches(vec2 p, const tol& t) const;

  /// Some handle h with t.same_point(position(h), p) whose handle is NOT in
  /// `excluded` (which must be sorted ascending), or npos.  Which match is
  /// returned is unspecified -- use only as an existence test.  Lets the
  /// delta path ask "does this point match anything besides the entries I am
  /// about to move?" without mutating the grid.
  [[nodiscard]] std::size_t match_excluding(
      vec2 p, const tol& t, std::span<const std::size_t> excluded) const;

  /// Entry nearest to `p` by geom::distance, skipping `exclude`; ties pick
  /// the lexicographically smallest position (then the smallest handle), so
  /// the result never depends on handle history; npos when the grid is empty
  /// (or holds only `exclude`).  Expanding-ring search, falling back to a
  /// full scan when the ring walk crosses a large empty region.
  [[nodiscard]] std::size_t nearest(vec2 p, std::size_t exclude = npos) const;

 private:
  // Cell table: open addressing, linear probing, power-of-two capacity.
  // Emptied cells keep their key with an empty chain (natural tombstones);
  // rehash drops them.
  struct cell_rec {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    std::size_t head = npos;
    bool used = false;
  };

  [[nodiscard]] std::int64_t coord(double x) const;
  [[nodiscard]] static std::size_t hash_cell(std::int64_t cx, std::int64_t cy);
  [[nodiscard]] std::size_t find_cell(std::int64_t cx, std::int64_t cy) const;
  std::size_t find_or_create_cell(std::int64_t cx, std::int64_t cy);
  void rehash(std::size_t min_cells);
  void link(std::size_t h, std::size_t slot);
  void unlink(std::size_t h);

  template <typename Fn>
  void for_block(vec2 p, Fn&& fn) const;  // all entries in the 3x3 block

  double cell_ = 0.0;
  std::size_t size_ = 0;

  std::vector<cell_rec> cells_;
  std::vector<cell_rec> cells_scratch_;  // rehash ping-pong buffer
  std::size_t used_cells_ = 0;

  // Per-entry parallel arrays; freed slots chain through next_.
  std::vector<vec2> pos_;
  std::vector<std::size_t> next_;
  std::vector<std::size_t> prev_;
  std::vector<std::size_t> cell_slot_;
  std::vector<std::uint8_t> live_;
  std::size_t free_head_ = npos;
};

}  // namespace gather::geom
