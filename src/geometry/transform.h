// Direct similarity transforms of the plane (rotation + uniform scale +
// translation, no reflection).
//
// Robots in the paper have arbitrary local coordinate systems that share only
// chirality (Sec. II).  A snapshot seen by a robot is therefore the true
// configuration mapped through a direct similarity.  The simulator uses
// `similarity` to hand each robot its own distorted snapshot and to map the
// computed destination back to the global frame; reflections are excluded
// because chirality is shared.
#pragma once

#include <cstddef>

#include "geometry/vec2.h"

namespace gather::geom {

/// p -> rot(p) * scale + offset, with rot a proper rotation (det = +1).
class similarity {
 public:
  similarity() = default;

  /// Build from rotation angle (counter-clockwise, radians), uniform scale
  /// (> 0) and translation.
  similarity(double angle, double scale, vec2 offset);

  [[nodiscard]] vec2 apply(vec2 p) const {
    return {scale_ * (cos_ * p.x - sin_ * p.y) + offset_.x,
            scale_ * (sin_ * p.x + cos_ * p.y) + offset_.y};
  }

  /// Inverse map (global <- local).
  [[nodiscard]] vec2 invert(vec2 q) const {
    const vec2 d = (q - offset_) / scale_;
    return {cos_ * d.x + sin_ * d.y, -sin_ * d.x + cos_ * d.y};
  }

  /// out[i] = apply(in[i]) for i in [0, n), bit-equal per element (the batch
  /// kernel performs the same IEEE multiplies/adds in the same order, just
  /// four points per step).  In-place (out == in) is allowed.  This is the
  /// simulator's snapshot hot path: one call per LOOK instead of n scalar
  /// apply calls.
  void apply_batch(const vec2* in, std::size_t n, vec2* out) const;

  [[nodiscard]] double scale() const { return scale_; }

 private:
  double cos_ = 1.0;
  double sin_ = 0.0;
  double scale_ = 1.0;
  vec2 offset_{};
};

}  // namespace gather::geom
