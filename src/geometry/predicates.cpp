#include "geometry/predicates.h"

#include <cmath>

namespace gather::geom {

int orientation(vec2 a, vec2 b, vec2 c, const tol& t) {
  // Compare twice-the-signed-area against a tolerance that scales with the
  // lengths involved so the predicate is invariant under uniform scaling.
  const double area2 = cross(b - a, c - a);
  const double span = std::max(distance(a, b), std::max(distance(a, c), 1e-300));
  const double eps = t.rel * span * std::max(t.scale, span);
  if (std::fabs(area2) <= eps) return 0;
  return area2 > 0 ? 1 : -1;
}

bool all_collinear(std::span<const vec2> pts, const tol& t) {
  collinear_witness w;
  return all_collinear(pts, t, w);
}

bool all_collinear(std::span<const vec2> pts, const tol& t,
                   collinear_witness& w) {
  w = collinear_witness{};
  if (pts.size() < 3) return true;
  // Use the two mutually farthest of the first point and its farthest mate as
  // a stable baseline; testing against a long baseline is numerically safer.
  vec2 a = pts[0];
  vec2 b = pts[0];
  double best = -1.0;
  for (const vec2& p : pts) {
    const double d = distance(a, p);
    if (d > best) {
      best = d;
      b = p;
    }
  }
  w.a = a;
  w.b = b;
  w.best_d = best;
  w.valid = true;
  if (t.len_zero(best)) return true;  // all points coincide
  for (const vec2& p : pts) {
    if (orientation(a, b, p, t) != 0) {
      w.off_line = p;
      w.has_off_line = true;
      return false;
    }
  }
  return true;
}

double distance_to_line(vec2 p, vec2 a, vec2 b) {
  const double len = distance(a, b);
  if (len == 0.0) return distance(p, a);
  return std::fabs(cross(b - a, p - a)) / len;
}

bool in_open_segment(vec2 p, vec2 a, vec2 b, const tol& t) {
  if (orientation(a, b, p, t) != 0) return false;
  if (t.same_point(p, a) || t.same_point(p, b)) return false;
  const double len = std::max(distance(a, b), 1e-300);
  const double proj = dot(p - a, b - a) / len;  // signed length along [a,b]
  return t.len_lt(0.0, proj) && t.len_lt(proj, len);
}

bool in_closed_segment(vec2 p, vec2 a, vec2 b, const tol& t) {
  if (t.same_point(p, a) || t.same_point(p, b)) return true;
  return in_open_segment(p, a, b, t);
}

std::optional<vec2> line_intersection(vec2 a1, vec2 a2, vec2 b1, vec2 b2,
                                      const tol& t) {
  const vec2 da = a2 - a1;
  const vec2 db = b2 - b1;
  const double denom = cross(da, db);
  const double span = std::max({norm(da), norm(db), 1e-300});
  if (std::fabs(denom) <= t.rel * span * std::max(t.scale, span)) {
    return std::nullopt;
  }
  const double s = cross(b1 - a1, db) / denom;
  return a1 + s * da;
}

bool on_half_line(vec2 p, vec2 u, vec2 v, const tol& t) {
  if (t.same_point(p, u)) return false;  // HF(u, v) excludes u
  if (t.same_point(u, v)) return false;  // degenerate half-line
  if (orientation(u, v, p, t) != 0) return false;
  return t.len_lt(0.0, dot(p - u, v - u) / distance(u, v));
}

}  // namespace gather::geom
