#include "geometry/cyclic.h"

#include <algorithm>

namespace gather::geom {

std::size_t booth_minimal_rotation(const std::vector<std::uint64_t>& s) {
  const std::size_t m = s.size();
  if (m < 2) return 0;
  // Booth's algorithm on the conceptually doubled string s+s: maintain the
  // current best start k and the KMP failure function f of the best rotation
  // seen so far.  Each mismatch either advances along f or moves k forward,
  // so the whole scan is O(m).
  const auto at = [&](std::size_t i) { return s[i < m ? i : i - m]; };
  std::vector<std::ptrdiff_t> f(2 * m, -1);
  std::size_t k = 0;
  for (std::size_t j = 1; j < 2 * m; ++j) {
    const std::uint64_t sj = at(j);
    std::ptrdiff_t i = f[j - k - 1];
    while (i != -1 && sj != at(k + static_cast<std::size_t>(i) + 1)) {
      if (sj < at(k + static_cast<std::size_t>(i) + 1))
        k = j - static_cast<std::size_t>(i) - 1;
      i = f[static_cast<std::size_t>(i)];
    }
    if (i == -1 && sj != at(k)) {
      if (sj < at(k)) k = j;
      f[j - k] = -1;
    } else {
      f[j - k] = i + 1;
    }
  }
  // k indexes the doubled string; k and k - m name the same rotation.
  return k < m ? k : k - m;
}

std::size_t minimal_cyclic_period(const std::vector<std::uint64_t>& s) {
  const std::size_t m = s.size();
  if (m < 2) return m;
  // Z-function of the doubled string: z[p] >= m means the rotation by p
  // matches the original on all m symbols, i.e. p is a cyclic period.  The
  // set of cyclic periods is a subgroup of Z_m, so the smallest one divides m.
  const std::size_t len = 2 * m;
  const auto at = [&](std::size_t i) { return s[i < m ? i : i - m]; };
  std::vector<std::size_t> z(len, 0);
  std::size_t l = 0, r = 0;
  for (std::size_t i = 1; i < len; ++i) {
    std::size_t zi = 0;
    if (i < r) zi = std::min(r - i, z[i - l]);
    while (i + zi < len && at(zi) == at(i + zi)) ++zi;
    if (i + zi > r) {
      l = i;
      r = i + zi;
    }
    z[i] = zi;
    // Early exit: positions are scanned in increasing order, so the first
    // period found is the minimal one.
    if (i <= m && zi >= m) return i;
  }
  return m;
}

std::size_t cyclic_rotation_order(const std::vector<std::uint64_t>& s) {
  const std::size_t m = s.size();
  if (m < 2) return 1;
  const std::size_t p = minimal_cyclic_period(s);
  return m / p;
}

std::vector<std::uint64_t> canonical_rotation(
    const std::vector<std::uint64_t>& s) {
  const std::size_t m = s.size();
  if (m < 2) return s;
  const std::size_t k = booth_minimal_rotation(s);
  std::vector<std::uint64_t> out;
  out.reserve(m);
  out.insert(out.end(), s.begin() + static_cast<std::ptrdiff_t>(k), s.end());
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(k));
  return out;
}

}  // namespace gather::geom
