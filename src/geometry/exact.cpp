#include "geometry/exact.h"

#include <cmath>

namespace gather::geom {

expansion2 two_sum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

namespace {

/// Split a double into two 26-bit halves (Dekker).
struct split_t {
  double hi, lo;
};

split_t split(double a) {
  constexpr double splitter = 134217729.0;  // 2^27 + 1
  const double c = splitter * a;
  const double hi = c - (c - a);
  return {hi, a - hi};
}

}  // namespace

expansion2 two_product(double a, double b) {
  const double p = a * b;
  const auto [ahi, alo] = split(a);
  const auto [bhi, blo] = split(b);
  const double err = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
  return {p, err};
}

namespace {

/// Shewchuk's Two-One-Diff: (a1 + a0) - b as an exact, non-overlapping
/// three-term expansion x2 + x1 + x0 (increasing magnitude order x0..x2).
struct expansion3 {
  double x0, x1, x2;
};

expansion3 two_one_diff(double a1, double a0, double b) {
  const expansion2 d = two_sum(a0, -b);     // (i, x0)
  const expansion2 s = two_sum(a1, d.hi);   // (x2, x1)
  return {d.lo, s.lo, s.hi};
}

}  // namespace

int exact_det2_sign(double a, double b, double c, double d) {
  // det = a*d - b*c as Shewchuk's Two-Two-Diff: an exact non-overlapping
  // four-term expansion whose sign is the sign of its largest-magnitude
  // (last nonzero) component.
  const expansion2 ad = two_product(a, d);
  const expansion2 bc = two_product(b, c);
  const expansion3 e = two_one_diff(ad.hi, ad.lo, bc.lo);   // (_j, _0, x0)
  const expansion3 f = two_one_diff(e.x2, e.x1, bc.hi);     // (x3, x2, x1)
  const double x[4] = {e.x0, f.x0, f.x1, f.x2};
  for (int i = 3; i >= 0; --i) {
    if (x[i] > 0.0) return 1;
    if (x[i] < 0.0) return -1;
  }
  return 0;
}

int exact_orientation(vec2 a, vec2 b, vec2 c) {
  return exact_det2_sign(b.x - a.x, c.x - a.x, b.y - a.y, c.y - a.y);
}

}  // namespace gather::geom
