// Rotating-calipers utilities on convex hulls: diameter (farthest pair) and
// width (minimal slab).  The simulator's metrics use the diameter on every
// recorded round, so the O(n log n) hull + O(h) calipers pass matters for
// large swarms (the naive pairwise scan is O(n^2)).
#pragma once

#include <span>
#include <utility>

#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::geom {

/// The farthest pair of points (the diameter of the set).  Degenerate inputs
/// return duplicated points / zero distance.
struct farthest_pair {
  vec2 a, b;
  double distance = 0.0;
};
[[nodiscard]] farthest_pair diameter_pair(std::span<const vec2> pts, const tol& t);

/// Largest pairwise distance (convenience wrapper).
[[nodiscard]] double diameter(std::span<const vec2> pts, const tol& t);

/// Width of the point set: the smallest distance between two parallel lines
/// enclosing it (0 for collinear sets).
[[nodiscard]] double width(std::span<const vec2> pts, const tol& t);

}  // namespace gather::geom
