// Chirality-aware angle utilities.
//
// The robots of the paper share a common sense of handedness ("chirality",
// Sec. II): they agree on the clockwise direction.  The library fixes one
// global convention: *clockwise* is the direction of negative mathematical
// angle (the screen convention).  Every angular walk in the configuration
// calculus (views, string of angles, side-steps) is expressed in clockwise
// angles so that all robots, whatever their local frame, order points
// identically.
#pragma once

#include <numbers>
#include <vector>

#include "geometry/vec2.h"

namespace gather::geom {

inline constexpr double two_pi = 2.0 * std::numbers::pi;
inline constexpr double pi = std::numbers::pi;

/// Normalize an angle into [0, 2*pi).
[[nodiscard]] double norm_angle(double a);

/// Clockwise angle of direction `v` measured from direction `ref`,
/// in [0, 2*pi).  Both vectors must be non-zero.
[[nodiscard]] double cw_angle(vec2 ref, vec2 v);

/// The paper's angle notation: clockwise angle at vertex `c` from segment
/// [c,u] to segment [c,v], in [0, 2*pi).
[[nodiscard]] double cw_angle_at(vec2 u, vec2 c, vec2 v);

/// Rotate point `p` clockwise by `angle` about `center`.
[[nodiscard]] vec2 rotated_cw_about(vec2 p, vec2 center, double angle);

/// Rotate point `p` counter-clockwise by `angle` about `center`.
[[nodiscard]] vec2 rotated_ccw_about(vec2 p, vec2 center, double angle);

/// Smallest angular separation between two directions, in [0, pi].
[[nodiscard]] double angular_separation(vec2 a, vec2 b);

/// Cluster angles in [0, 2*pi): values within `eps` of a neighbour share a
/// cluster, and clusters touching across the 0/2*pi seam are merged.  Returns
/// the representative angle of each cluster, ascending.  Exact sorts on
/// snapped angles avoid the non-strict-weak-order pitfalls of tolerance
/// comparators and keep co-ray points at one exact angle.
[[nodiscard]] std::vector<double> cluster_angle_values(std::vector<double> thetas,
                                                       double eps);

/// Scratch-reusing variant of `cluster_angle_values`: sorts `thetas` in place
/// and writes the representatives into `reps` (cleared first).  Allocates
/// nothing once the caller's buffers have warmed up; the representatives are
/// bit-identical to `detail::cluster_angle_values_reference`.
void cluster_angles_into(std::vector<double>& thetas, double eps,
                         std::vector<double>& reps);

/// `cluster_angles_into` for input that is already sorted ascending: skips
/// the sort, produces bit-identical representatives.
void cluster_presorted_angles_into(const std::vector<double>& thetas,
                                   double eps, std::vector<double>& reps);

/// The representative from `reps` (cyclically) nearest to `theta`; ties pick
/// the first minimal representative in ascending order.  `reps` must be
/// sorted ascending (as produced by `cluster_angle_values`).  O(log |reps|).
[[nodiscard]] double nearest_angle_rep(double theta, const std::vector<double>& reps);

/// Snap every element of the ASCENDING-sorted `thetas` to its nearest
/// representative in place, bitwise identical to calling `nearest_angle_rep`
/// per element, in O(|thetas| + |reps|) via a monotone merge pointer.
void snap_sorted_angles(std::vector<double>& thetas,
                        const std::vector<double>& reps);

namespace detail {

// Pre-subquadratic reference implementations, kept as equivalence oracles:
// the fast paths above must return bit-identical results (fuzzed by
// test_view_pipeline).  The reference cluster pass allocates one vector per
// cluster and the reference snap is a linear scan over all representatives.
[[nodiscard]] std::vector<double> cluster_angle_values_reference(
    std::vector<double> thetas, double eps);
[[nodiscard]] double nearest_angle_rep_reference(double theta,
                                                 const std::vector<double>& reps);

}  // namespace detail

}  // namespace gather::geom
