// Batch ("structure of arrays") geometry kernels.
//
// The per-round hot paths -- the pairwise-distance table, the per-observer
// polar transforms behind Def. 2 views, and the local-frame snapshots of the
// simulator -- all evaluate one short formula over thousands of points.  This
// header batches those formulas over contiguous coordinate arrays (served by
// configuration::occupied_xs/occupied_ys) so they vectorize, with a runtime
// dispatch between an AVX2 translation unit and a portable scalar fallback.
//
// Bit-exactness contract: every kernel produces output bytes identical to the
// scalar formula it replaces, on both dispatch paths.  The AVX2 unit is
// compiled with -ffp-contract=off and restricted to IEEE-exact operations
// (add/sub/mul/div and integer moves -- each rounds exactly like its scalar
// counterpart), while the transcendental cores (hypot, atan2) always run
// through libm, never a vector approximation.  The dispatch is therefore a
// pure performance switch: `GATHER_FORCE_SCALAR=1` (or set_force_scalar) must
// not change a single output byte, which tests/kernel_test.cpp fuzzes.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/vec2.h"
#include "util/radix.h"

namespace gather::geom::kernels {

/// True when batch kernels run through the AVX2 translation unit: it was
/// compiled in, the CPU reports AVX2, and no scalar override is active.
/// Resolved once and cached; set_force_scalar re-resolves.
[[nodiscard]] bool avx2_active();

/// Name of the active dispatch path: "avx2" or "scalar".
[[nodiscard]] const char* active_path();

/// Test hook: `true` pins every kernel to the scalar path; `false` returns to
/// the default resolution (CPU probe, honoring the GATHER_FORCE_SCALAR
/// environment variable).  Not thread-safe against concurrent kernel calls;
/// flip it only between batches.
void set_force_scalar(bool force);

/// out[j] = std::hypot(xs[j] - px, ys[j] - py) -- bit-equal to
/// geom::distance({px, py}, {xs[j], ys[j]}).  The subtractions batch; the
/// hypot core stays libm (pinned distance semantics).
void distance_row(const double* xs, const double* ys, std::size_t n,
                  double px, double py, double* out);

/// The cross/dot pair of cw_angle's polar decomposition about observer
/// (px, py) with reference direction (rx, ry):
///   cr[j] = rx * (ys[j] - py) - ry * (xs[j] - px)
///   dt[j] = rx * (xs[j] - px) + ry * (ys[j] - py)
/// bit-equal to geom::cross(ref, v) / geom::dot(ref, v) for
/// v = {xs[j], ys[j]} - {px, py}.
void cross_dot_about(const double* xs, const double* ys, std::size_t n,
                     double px, double py, double rx, double ry,
                     double* cr, double* dt);

/// angles[j] = geom::cw_angle reassembled from the precomputed cross/dot
/// pair: norm_angle(-atan2(cr[j], dt[j])).  Scalar on both paths -- the
/// atan2 core is pinned to libm.
void cw_angles_from_cross_dot(const double* cr, const double* dt,
                              std::size_t n, double* angles);

/// out[j] = num[j] / denom.  IEEE division is exact-rounded, so the vector
/// and scalar paths agree bitwise.  In-place (out == num) is allowed.
void divide_batch(const double* num, std::size_t n, double denom, double* out);

/// Radix key of one view angle: the bit pattern of a non-negative double is
/// order-isomorphic to its value; -0.0 canonicalizes to the +0.0 pattern.
[[nodiscard]] inline std::uint64_t angle_key(double a) {
  const std::uint64_t k = std::bit_cast<std::uint64_t>(a);
  return (k >> 63) != 0 ? 0 : k;
}

/// keys[j] = angle_key(angles[j]) -- pure integer moves, batched.
void angle_keys(const double* angles, std::size_t n, std::uint64_t* keys);

/// Stable ascending sort of angle-key records, byte-identical to
/// util::radix_sort_key_idx.  Keys must be angle_key values (bit patterns of
/// doubles in [0, 2*pi)); such keys bucket monotonically by value, so large
/// arrays use one counting pass over value buckets plus a near-sorted
/// insertion fixup instead of the radix's several full passes.  Small arrays
/// fall through to the radix sort.  Both scratch vectors are caller-owned and
/// resized as needed.
void sort_angle_keys(std::vector<util::key_idx>& a,
                     std::vector<util::key_idx>& radix_tmp,
                     std::vector<std::uint32_t>& bucket_scratch);

/// One record of the fused per-observer view pipeline: the angle's radix key
/// (angle_key bit pattern) paired with the normalized distance.  16 bytes,
/// deliberately layout-compatible with a (double angle, double dist) pair:
/// the key IS the angle's bit pattern, so a sorted record array can be
/// copied byte-for-byte into a polar view once the snap pass is known to be
/// the identity.
struct polar_rec {
  std::uint64_t key;
  double dist;
};
static_assert(sizeof(polar_rec) == 16);

/// Stable ascending sort of polar records by key, byte-identical to a stable
/// comparison sort (and hence to the radix-sorted reference order).  Keys
/// must be angle_key values -- bit patterns of doubles in [0, 2*pi), sign
/// bit clear -- so bit order equals value order and the value-proportional
/// bucket map is monotone: a counting pass over ~4x overallocated buckets, a
/// stable in-order scatter, and a near-sorted insertion fixup whose strict
/// `>` never reorders equal keys.  Result lands back in `recs`; `tmp` and
/// `bucket_scratch` are caller-owned scratch.
void sort_polar_recs(std::vector<polar_rec>& recs,
                     std::vector<polar_rec>& tmp,
                     std::vector<std::uint32_t>& bucket_scratch);

/// snap_is_identity over the keys of ascending-sorted records (keys are
/// angle bit patterns, so the check reads them as doubles directly).
[[nodiscard]] bool snap_is_identity_recs(const polar_rec* recs, std::size_t n,
                                         double eps);

/// True iff angle clustering and snapping (cluster_presorted_angles_into +
/// snap_sorted_angles) would be the identity on the ASCENDING-sorted
/// `thetas`: every adjacent gap exceeds eps (all clusters are singletons,
/// whose representative is the member itself), the back stays clear of the
/// 0/2*pi seam (no seam merge, no zero-snap from above), and the front is
/// either exactly 0.0 or clear of the seam from below.  Callers use it to
/// skip the clustering pass entirely; the result is bit-identical because a
/// singleton mean is exact.
[[nodiscard]] bool snap_is_identity(const double* thetas, std::size_t n,
                                    double eps);

/// out[i] = {scale * (c * in[i].x - s * in[i].y) + off.x,
///           scale * (s * in[i].x + c * in[i].y) + off.y}
/// -- bit-equal to geom::similarity::apply per element (the batched lanes
/// perform the same IEEE multiplies/adds in the same order).  In-place
/// (out == in) is allowed.
void similarity_apply_batch(double c, double s, double scale, vec2 off,
                            const vec2* in, std::size_t n, vec2* out);

}  // namespace gather::geom::kernels
