#include "workloads/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gather::workloads {

std::optional<std::vector<geom::vec2>> read_points(std::istream& is,
                                                   std::string* error) {
  std::vector<geom::vec2> pts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    double x = 0.0, y = 0.0;
    if (!(ls >> x >> y)) {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": expected 'x y', got '" +
                 line + "'";
      }
      return std::nullopt;
    }
    std::string rest;
    if (ls >> rest && !rest.empty() && rest[0] != '#') {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": trailing content '" +
                 rest + "'";
      }
      return std::nullopt;
    }
    pts.push_back({x, y});
  }
  return pts;
}

std::optional<std::vector<geom::vec2>> read_points_file(const std::string& path,
                                                        std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return read_points(f, error);
}

void write_points(std::ostream& os, const std::vector<geom::vec2>& pts) {
  os << "# " << pts.size() << " robots\n";
  // max_digits10 digits make the decimal round-trip exact for doubles.
  char buf[64];
  for (const geom::vec2& p : pts) {
    std::snprintf(buf, sizeof buf, "%.17g %.17g\n", p.x, p.y);
    os << buf;
  }
}

}  // namespace gather::workloads
