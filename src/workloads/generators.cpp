#include "workloads/generators.h"

#include <algorithm>
#include <cmath>

#include "geometry/angles.h"

namespace gather::workloads {

std::vector<vec2> uniform_random(std::size_t n, sim::rng& random, double box) {
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({random.uniform(-box, box), random.uniform(-box, box)});
  }
  return pts;
}

std::vector<vec2> regular_polygon(std::size_t n, vec2 center, double radius,
                                  double phase) {
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = phase + geom::two_pi * static_cast<double>(i) / static_cast<double>(n);
    pts.push_back(center + radius * vec2{std::cos(a), std::sin(a)});
  }
  return pts;
}

std::vector<vec2> symmetric_rings(std::size_t k, std::size_t rings, sim::rng& random) {
  std::vector<vec2> pts;
  pts.reserve(k * rings);
  for (std::size_t r = 0; r < rings; ++r) {
    const double radius = random.uniform(0.5, 3.0);
    const double phase = random.uniform(0.0, geom::two_pi);
    const auto ring = regular_polygon(k, {}, radius, phase);
    pts.insert(pts.end(), ring.begin(), ring.end());
  }
  return pts;
}

std::vector<vec2> biangular(std::size_t k, double alpha, sim::rng& random) {
  const double beta = geom::two_pi / static_cast<double>(k) - alpha;
  std::vector<vec2> pts;
  pts.reserve(2 * k);
  double theta = random.uniform(0.0, geom::two_pi);
  for (std::size_t i = 0; i < 2 * k; ++i) {
    const double radius = random.uniform(0.5, 2.0);
    pts.push_back(radius * vec2{std::cos(theta), std::sin(theta)});
    theta += (i % 2 == 0) ? alpha : beta;
  }
  return pts;
}

std::vector<vec2> quasi_regular_with_center(std::size_t k, std::size_t at_center,
                                            sim::rng& random) {
  const double phase = random.uniform(0.0, geom::two_pi);
  std::vector<vec2> pts = regular_polygon(k, {}, random.uniform(1.0, 2.0), phase);
  // Collapse `at_center` of the vertices onto the center; the Lemma 3.4
  // deficit for restoring regularity is exactly `at_center`.
  at_center = std::min(at_center, pts.size());
  for (std::size_t i = 0; i < at_center; ++i) {
    pts[i * (pts.size() / std::max<std::size_t>(at_center, 1)) % pts.size()] = {0.0, 0.0};
  }
  return pts;
}

namespace {

std::vector<vec2> collinear_points(std::size_t n, sim::rng& random) {
  const double dir_angle = random.uniform(0.0, geom::two_pi);
  const vec2 dir{std::cos(dir_angle), std::sin(dir_angle)};
  const vec2 origin{random.uniform(-5.0, 5.0), random.uniform(-5.0, 5.0)};
  std::vector<double> params;
  params.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s;
    bool fresh;
    do {
      s = random.uniform(-5.0, 5.0);
      fresh = std::none_of(params.begin(), params.end(),
                           [&](double q) { return std::fabs(q - s) < 1e-3; });
    } while (!fresh);
    params.push_back(s);
  }
  std::vector<vec2> pts;
  pts.reserve(n);
  for (double s : params) pts.push_back(origin + s * dir);
  return pts;
}

}  // namespace

std::vector<vec2> linear_unique_weber(std::size_t n, sim::rng& random) {
  if (n % 2 == 0) ++n;  // odd count guarantees a unique median
  return collinear_points(n, random);
}

std::vector<vec2> linear_two_weber(std::size_t n, sim::rng& random) {
  if (n % 2 == 1) ++n;  // even count with distinct points: median interval
  n = std::max<std::size_t>(n, 4);
  return collinear_points(n, random);
}

std::vector<vec2> with_majority(std::size_t n, std::size_t stack, sim::rng& random) {
  stack = std::clamp<std::size_t>(stack, 2, n);
  std::vector<vec2> pts;
  pts.reserve(n);
  const vec2 anchor{random.uniform(-5.0, 5.0), random.uniform(-5.0, 5.0)};
  for (std::size_t i = 0; i < stack; ++i) pts.push_back(anchor);
  auto rest = uniform_random(n - stack, random);
  pts.insert(pts.end(), rest.begin(), rest.end());
  return pts;
}

std::vector<vec2> bivalent(std::size_t n, sim::rng& random) {
  if (n % 2 == 1) ++n;
  const vec2 a{random.uniform(-5.0, 5.0), random.uniform(-5.0, 5.0)};
  vec2 b;
  do {
    b = {random.uniform(-5.0, 5.0), random.uniform(-5.0, 5.0)};
  } while (geom::distance(a, b) < 1.0);
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n / 2; ++i) pts.push_back(a);
  for (std::size_t i = 0; i < n / 2; ++i) pts.push_back(b);
  return pts;
}

std::vector<vec2> axially_symmetric(std::size_t n, sim::rng& random) {
  // Mirror pairs across the y-axis, plus one on-axis point for odd n; random
  // distinct offsets keep rotational symmetry away (almost surely).
  std::vector<vec2> pts;
  pts.reserve(n);
  if (n % 2 == 1) pts.push_back({0.0, random.uniform(-4.0, 4.0)});
  while (pts.size() + 1 < n + 1 && pts.size() < n) {
    const vec2 p{random.uniform(0.3, 5.0), random.uniform(-5.0, 5.0)};
    pts.push_back(p);
    pts.push_back({-p.x, p.y});
    if (pts.size() > n) pts.pop_back();
  }
  pts.resize(n);
  return pts;
}

std::vector<vec2> perturbed(std::vector<vec2> pts, double magnitude, sim::rng& random) {
  for (vec2& p : pts) {
    const double a = random.uniform(0.0, geom::two_pi);
    const double r = random.uniform(0.0, magnitude);
    p += r * vec2{std::cos(a), std::sin(a)};
  }
  return pts;
}

std::vector<vec2> jittered_grid(std::size_t n, double jitter, sim::rng& random) {
  const std::size_t cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % cols);
    const double y = static_cast<double>(i / cols);
    const double a = random.uniform(0.0, geom::two_pi);
    const double r = random.uniform(0.0, jitter);
    pts.push_back({x + r * std::cos(a), y + r * std::sin(a)});
  }
  return pts;
}

std::vector<vec2> clustered(std::size_t n, std::size_t clusters, double radius,
                            sim::rng& random) {
  clusters = std::max<std::size_t>(clusters, 1);
  std::vector<vec2> centers;
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back({random.uniform(-8.0, 8.0), random.uniform(-8.0, 8.0)});
  }
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const vec2 center = centers[i % clusters];
    const double a = random.uniform(0.0, geom::two_pi);
    const double r = radius * std::sqrt(random.uniform(0.0, 1.0));
    pts.push_back(center + r * vec2{std::cos(a), std::sin(a)});
  }
  return pts;
}

std::vector<named_workload> corpus(std::size_t n, std::uint64_t seed) {
  using cc = config::config_class;
  sim::rng random(seed);
  std::vector<named_workload> out;
  out.push_back({"uniform-random", uniform_random(n, random), cc::asymmetric, false});
  out.push_back({"majority", with_majority(n, std::max<std::size_t>(2, n / 3), random),
                 cc::multiple, true});
  out.push_back({"linear-1w", linear_unique_weber(n | 1, random), cc::linear_1w, true});
  out.push_back({"linear-2w", linear_two_weber(std::max<std::size_t>(n & ~1ULL, 4), random),
                 cc::linear_2w, true});
  if (n >= 3) {
    out.push_back({"regular-polygon", regular_polygon(n), cc::quasi_regular, true});
  }
  if (n >= 6 && n % 2 == 0) {
    out.push_back({"symmetric-rings", symmetric_rings(n / 2, 2, random),
                   cc::quasi_regular, true});
  }
  if (n >= 4 && n % 2 == 0) {
    out.push_back({"biangular",
                   biangular(n / 2, 0.4 * geom::two_pi / static_cast<double>(n / 2), random),
                   cc::quasi_regular, true});
  }
  if (n >= 5) {
    out.push_back({"qr-occupied-center", quasi_regular_with_center(n - 1, 1, random),
                   cc::quasi_regular, false});
  }
  out.push_back({"axial", axially_symmetric(n, random), cc::asymmetric, false});
  out.push_back({"grid", jittered_grid(n, 0.2, random), cc::asymmetric, false});
  out.push_back(
      {"clustered", clustered(n, std::max<std::size_t>(2, n / 4), 1.0, random),
       cc::asymmetric, false});
  return out;
}

}  // namespace gather::workloads
