// Seeded configuration generators (system S6 in DESIGN.md).
//
// One generator per configuration class of Sec. IV, plus stress variants
// (axial symmetry for the chirality tie-break, perturbations for robustness).
// All generators are deterministic functions of the supplied rng, so every
// experiment is reproducible from its seed.
#pragma once

#include <string>
#include <vector>

#include "config/classify.h"
#include "geometry/vec2.h"
#include "sim/rng.h"

namespace gather::workloads {

using geom::vec2;

/// n i.i.d. uniform points in a centered box -- almost surely of class A.
[[nodiscard]] std::vector<vec2> uniform_random(std::size_t n, sim::rng& random,
                                               double box = 10.0);

/// Vertices of a regular n-gon (class QR via full rotational symmetry).
[[nodiscard]] std::vector<vec2> regular_polygon(std::size_t n, vec2 center = {},
                                                double radius = 1.0,
                                                double phase = 0.0);

/// k-fold rotationally symmetric configuration: `rings` rings of k robots
/// each at random radii and phases (sym = k > 1, class QR).
[[nodiscard]] std::vector<vec2> symmetric_rings(std::size_t k, std::size_t rings,
                                                sim::rng& random);

/// Biangular configuration: 2k robots whose consecutive angles around the
/// center alternate between alpha and 2*pi/k - alpha, with *arbitrary* radii
/// (regular with period k about an unoccupied center that generally differs
/// from the sec center -- the hard QR detection case).
[[nodiscard]] std::vector<vec2> biangular(std::size_t k, double alpha,
                                          sim::rng& random);

/// Quasi-regular with an occupied center: a regular k-gon with `at_center`
/// of its robots collapsed onto the center (Def. 6; detected via the
/// Lemma 3.4 deficit test).
[[nodiscard]] std::vector<vec2> quasi_regular_with_center(std::size_t k,
                                                          std::size_t at_center,
                                                          sim::rng& random);

/// Collinear, all distinct, odd count: unique median, class L1W.
[[nodiscard]] std::vector<vec2> linear_unique_weber(std::size_t n, sim::rng& random);

/// Collinear, all distinct, even count >= 4: median interval, class L2W.
[[nodiscard]] std::vector<vec2> linear_two_weber(std::size_t n, sim::rng& random);

/// A unique strictly-maximal multiplicity point plus scattered singletons
/// (class M).  `stack` robots share the majority point (>= 2).
[[nodiscard]] std::vector<vec2> with_majority(std::size_t n, std::size_t stack,
                                              sim::rng& random);

/// The bivalent configuration: n/2 robots at each of two points (n even).
[[nodiscard]] std::vector<vec2> bivalent(std::size_t n, sim::rng& random);

/// Mirror-symmetric (axial) configuration with no rotational symmetry:
/// exercises the chirality-based symmetry breaking.
[[nodiscard]] std::vector<vec2> axially_symmetric(std::size_t n, sim::rng& random);

/// Displace every point by up to `magnitude` in a random direction.
[[nodiscard]] std::vector<vec2> perturbed(std::vector<vec2> pts, double magnitude,
                                          sim::rng& random);

/// Jittered grid deployment: n robots on a near-square lattice with spacing
/// 1, each displaced by up to `jitter` (a surveying/coverage pattern; class A
/// for jitter > 0, highly symmetric for jitter = 0).
[[nodiscard]] std::vector<vec2> jittered_grid(std::size_t n, double jitter,
                                              sim::rng& random);

/// Clustered deployment: `clusters` Gaussian-ish clumps of robots (airdrop
/// groups); cluster centers uniform in a box, members within `radius`.
[[nodiscard]] std::vector<vec2> clustered(std::size_t n, std::size_t clusters,
                                          double radius, sim::rng& random);

/// A named instance for sweep harnesses.
struct named_workload {
  std::string name;
  std::vector<vec2> points;
  /// The class the instance is constructed to be in (checked by tests);
  /// `asymmetric` entries may legitimately classify as QR in rare draws.
  config::config_class expected;
  bool expected_exact = true;  ///< false when the class is only typical
};

/// A mixed corpus covering every gatherable class at the given size.
[[nodiscard]] std::vector<named_workload> corpus(std::size_t n, std::uint64_t seed);

}  // namespace gather::workloads
