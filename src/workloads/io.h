// Plain-text configuration I/O.
//
// Format: one robot per line, "x y" separated by whitespace; blank lines and
// lines starting with '#' are ignored.  Co-located robots are expressed by
// repeating the point.  Used by gather_cli --points and by experiment
// tooling that replays externally-generated configurations.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec2.h"

namespace gather::workloads {

/// Parse a configuration from a stream.  Returns nullopt (with a diagnostic
/// in `error` when provided) on malformed input.
[[nodiscard]] std::optional<std::vector<geom::vec2>> read_points(
    std::istream& is, std::string* error = nullptr);

/// Parse from a file path.
[[nodiscard]] std::optional<std::vector<geom::vec2>> read_points_file(
    const std::string& path, std::string* error = nullptr);

/// Write a configuration in the same format.
void write_points(std::ostream& os, const std::vector<geom::vec2>& pts);

}  // namespace gather::workloads
