// Bounded model-checking explorer for the gathering algorithm.
//
// Where `gather_fuzz` samples adversary schedules at random, the explorer
// enumerates *all* of them, bounded: starting from a set of seed
// configurations it expands, round by round, every admissible adversary
// choice -- crash subsets within a fault budget, every non-empty activation
// subset of the live robots, and every per-robot stop on a quantized
// movement-truncation grid -- and evaluates the paper's lemma predicates
// (core::state_lemmas / core::transition_lemmas) in every state it reaches.
//
// Tractability comes from duplicate-state pruning: states are hashed under
// the symmetry-canonical key of config/state_key.h (similarity-invariant,
// Booth-minimal rotation), so the 90-degree rotations, translations and
// scalings that a lattice seed sweep mass-produces collapse into one
// explored representative.  The exact (raw) key is tracked alongside purely
// for statistics: raw-unique vs canonical-unique is the reported symmetry
// reduction factor.
//
// Exploration is a DFS over (positions, liveness, crash budget, round); each
// state's configuration is materialized in one shared `configuration` via
// the mutation API (`apply_moves`), which keeps the derived-geometry cache's
// buffers warm across the entire search.  The per-round mechanics mirror
// sim::engine::run exactly -- same delta derivation, tolerance policy,
// snapping, destination lookup, and the shared sim::truncated_stop rule --
// so a recorded decision path replays bit-identically through the engine
// (sim::replay_schedule); tests/check_test.cpp pins this round for round.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "geometry/vec2.h"
#include "obs/metrics_registry.h"
#include "sim/replay.h"

namespace gather::check {

struct check_options {
  std::size_t max_rounds = 3;           ///< bounded exploration depth
  std::size_t crash_budget = 1;         ///< total crash faults f
  std::size_t max_crashes_per_round = 1;
  std::uint32_t truncation_levels = 2;  ///< movement grid: 2 = {delta, full}
  double delta_fraction = 0.25;         ///< engine delta as fraction of seed diameter
  std::size_t max_states = 4'000'000;   ///< generated-state safety cap
  std::size_t max_counterexamples = 8;  ///< stop after recording this many
  bool canonical_dedup = true;          ///< false: exact-key dedup only
};

/// Per-lemma coverage: how often the predicate applied, and how often it
/// failed, across all explored states (or transitions).
struct lemma_coverage {
  std::string id;
  std::string title;
  std::uint64_t applicable = 0;
  std::uint64_t not_applicable = 0;
  std::uint64_t violations = 0;
};

/// One recorded violation: the lemma, the depth, the replayable schedule and
/// the explorer's own path of snapped round-start position vectors
/// (bit-identical to the engine's round_record.positions when the trace is
/// replayed; the engine snaps in place at round start, and so does the
/// explorer) -- `path.front()` is the (snapped) seed state, `path.back()`
/// the violating state.
struct counterexample {
  std::string lemma_id;
  std::size_t round = 0;
  sim::schedule_trace trace;
  std::vector<std::vector<geom::vec2>> path;
};

struct check_result {
  std::uint64_t seeds = 0;
  std::uint64_t states_generated = 0;  ///< states produced (pre-dedup)
  std::uint64_t states_explored = 0;   ///< unique under the active dedup key
  std::uint64_t duplicates_pruned = 0;
  std::uint64_t raw_unique = 0;        ///< unique under the exact key
  /// Edges whose transition lemmas were evaluated: every generated non-root
  /// state, *including* edges into already-visited (pruned) states -- a
  /// duplicate child reached from a differently-classed parent is still a
  /// fresh transition.  On a run that neither caps nor stops early this
  /// equals states_generated - seeds.
  std::uint64_t transitions_checked = 0;
  std::uint64_t terminal_gathered = 0;
  std::uint64_t terminal_stalled = 0;
  std::uint64_t bound_reached = 0;
  bool state_cap_hit = false;
  std::vector<lemma_coverage> state_coverage;
  std::vector<lemma_coverage> transition_coverage;
  std::vector<counterexample> counterexamples;

  /// raw-unique / canonical-unique states: how much the symmetry-canonical
  /// key shrank the search (1.0 when canonical dedup is off or empty).
  [[nodiscard]] double symmetry_reduction() const;
  [[nodiscard]] std::uint64_t total_violations() const;
};

struct check_spec {
  std::vector<std::vector<geom::vec2>> seeds;
  const core::gathering_algorithm* algorithm = nullptr;
  check_options options;
  obs::metrics_registry* metrics = nullptr;  ///< optional "check.*" export
};

/// Run the bounded search.  Deterministic: identical specs produce identical
/// results (the DFS order is fixed and no randomness is involved).
[[nodiscard]] check_result explore(const check_spec& spec);

/// All multisets of `n` points on the w x h integer lattice, in a fixed
/// deterministic order -- the standard seed sweep for small-n checking.
[[nodiscard]] std::vector<std::vector<geom::vec2>> lattice_multisets(
    std::size_t w, std::size_t h, std::size_t n);

}  // namespace gather::check
