// Umbrella header for the bounded model checker (system S9 in DESIGN.md).
#pragma once

#include "check/explorer.h"
#include "check/report.h"
