// Report rendering for gather_check results: a human-readable text table and
// a machine-readable JSON document (schema "gather-check-v1") for golden
// comparison by tools/check/compare.py.
#pragma once

#include <string>

#include "check/explorer.h"

namespace gather::check {

/// Multi-line text report: options, state counts, symmetry reduction and the
/// per-lemma coverage table.
[[nodiscard]] std::string render_text(const check_result& r,
                                      const check_options& o);

/// One JSON object, schema "gather-check-v1".  Key order is fixed and all
/// counters are exact integers, so byte-equality is a valid golden check.
[[nodiscard]] std::string render_json(const check_result& r,
                                      const check_options& o);

}  // namespace gather::check
