#include "check/report.h"

#include <cstdio>

#include "obs/json.h"

namespace gather::check {

namespace {

void append_kv(std::string& out, std::string_view key, std::uint64_t v,
               bool comma = true) {
  obs::json_append_string(out, key);
  out += ':';
  obs::json_append_uint(out, v);
  if (comma) out += ',';
}

void coverage_json(std::string& out, const std::vector<lemma_coverage>& cov) {
  out += '[';
  for (std::size_t i = 0; i < cov.size(); ++i) {
    if (i != 0) out += ',';
    out += '{';
    obs::json_append_string(out, "id");
    out += ':';
    obs::json_append_string(out, cov[i].id);
    out += ',';
    obs::json_append_string(out, "title");
    out += ':';
    obs::json_append_string(out, cov[i].title);
    out += ',';
    append_kv(out, "applicable", cov[i].applicable);
    append_kv(out, "not_applicable", cov[i].not_applicable);
    append_kv(out, "violations", cov[i].violations, /*comma=*/false);
    out += '}';
  }
  out += ']';
}

void coverage_text(std::string& out, std::string_view heading,
                   const std::vector<lemma_coverage>& cov) {
  out += heading;
  out += '\n';
  char buf[256];
  for (const lemma_coverage& l : cov) {
    std::snprintf(buf, sizeof buf,
                  "  %-10s %-44s applicable %10llu  n/a %10llu  violations %llu\n",
                  l.id.c_str(), l.title.c_str(),
                  static_cast<unsigned long long>(l.applicable),
                  static_cast<unsigned long long>(l.not_applicable),
                  static_cast<unsigned long long>(l.violations));
    out += buf;
  }
}

}  // namespace

std::string render_text(const check_result& r, const check_options& o) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "gather_check: rounds<=%zu crash-budget=%zu (<=%zu/round) "
                "levels=%u delta-fraction=%.17g dedup=%s\n",
                o.max_rounds, o.crash_budget, o.max_crashes_per_round,
                o.truncation_levels, o.delta_fraction,
                o.canonical_dedup ? "canonical" : "raw");
  out += buf;
  std::snprintf(buf, sizeof buf,
                "seeds %llu | generated %llu | explored %llu | pruned %llu | "
                "raw-unique %llu\n",
                static_cast<unsigned long long>(r.seeds),
                static_cast<unsigned long long>(r.states_generated),
                static_cast<unsigned long long>(r.states_explored),
                static_cast<unsigned long long>(r.duplicates_pruned),
                static_cast<unsigned long long>(r.raw_unique));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "terminals: gathered %llu, stalled %llu, bound %llu%s\n",
                static_cast<unsigned long long>(r.terminal_gathered),
                static_cast<unsigned long long>(r.terminal_stalled),
                static_cast<unsigned long long>(r.bound_reached),
                r.state_cap_hit ? "  [STATE CAP HIT: search incomplete]" : "");
  out += buf;
  std::snprintf(buf, sizeof buf,
                "symmetry reduction: %.3fx (raw-unique / explored)\n",
                r.symmetry_reduction());
  out += buf;
  coverage_text(out, "state lemmas:", r.state_coverage);
  std::snprintf(buf, sizeof buf, "transitions checked: %llu\n",
                static_cast<unsigned long long>(r.transitions_checked));
  out += buf;
  coverage_text(out, "transition lemmas:", r.transition_coverage);
  std::snprintf(buf, sizeof buf, "violations: %llu (%zu counterexample%s recorded)\n",
                static_cast<unsigned long long>(r.total_violations()),
                r.counterexamples.size(),
                r.counterexamples.size() == 1 ? "" : "s");
  out += buf;
  return out;
}

std::string render_json(const check_result& r, const check_options& o) {
  std::string out;
  out += '{';
  obs::json_append_string(out, "schema");
  out += ':';
  obs::json_append_string(out, "gather-check-v1");
  out += ',';

  obs::json_append_string(out, "options");
  out += ":{";
  append_kv(out, "max_rounds", o.max_rounds);
  append_kv(out, "crash_budget", o.crash_budget);
  append_kv(out, "max_crashes_per_round", o.max_crashes_per_round);
  append_kv(out, "truncation_levels", o.truncation_levels);
  obs::json_append_string(out, "delta_fraction");
  out += ':';
  obs::json_append_double(out, o.delta_fraction);
  out += ',';
  obs::json_append_string(out, "canonical_dedup");
  out += ':';
  out += o.canonical_dedup ? "true" : "false";
  out += "},";

  obs::json_append_string(out, "counts");
  out += ":{";
  append_kv(out, "seeds", r.seeds);
  append_kv(out, "states_generated", r.states_generated);
  append_kv(out, "states_explored", r.states_explored);
  append_kv(out, "duplicates_pruned", r.duplicates_pruned);
  append_kv(out, "raw_unique", r.raw_unique);
  append_kv(out, "transitions_checked", r.transitions_checked);
  append_kv(out, "terminal_gathered", r.terminal_gathered);
  append_kv(out, "terminal_stalled", r.terminal_stalled);
  append_kv(out, "bound_reached", r.bound_reached);
  append_kv(out, "state_cap_hit", r.state_cap_hit ? 1 : 0, /*comma=*/false);
  out += "},";

  obs::json_append_string(out, "symmetry_reduction");
  out += ':';
  obs::json_append_double(out, r.symmetry_reduction());
  out += ',';

  obs::json_append_string(out, "state_coverage");
  out += ':';
  coverage_json(out, r.state_coverage);
  out += ',';
  obs::json_append_string(out, "transition_coverage");
  out += ':';
  coverage_json(out, r.transition_coverage);
  out += ',';

  append_kv(out, "violations", r.total_violations());
  append_kv(out, "counterexamples", r.counterexamples.size(),
            /*comma=*/false);
  out += '}';
  out += '\n';
  return out;
}

}  // namespace gather::check
