#include "check/explorer.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "config/classify.h"
#include "config/state_key.h"
#include "core/lemma_registry.h"
#include "core/predicates.h"

namespace gather::check {

namespace {

using config::configuration;
using geom::vec2;

// The subset enumeration below uses one mask word per live-robot set.
constexpr std::size_t max_robots = 16;

struct explorer {
  explorer(const check_spec& s, const check_options& o, check_result& r)
      : spec(s), opts(o), result(r) {}

  const check_spec& spec;
  const check_options& opts;
  check_result& result;

  configuration cfg;
  std::unordered_set<config::state_key, config::state_key_hash> visited;
  std::unordered_set<config::state_key, config::state_key_hash> raw_seen;
  std::vector<sim::trace_step> path_steps;
  std::vector<std::vector<vec2>> path_positions;
  const std::vector<vec2>* seed = nullptr;
  double delta_abs = 0.0;
  bool stop = false;

  void run_seed(const std::vector<vec2>& pts) {
    seed = &pts;
    // Same derivation as sim::engine: delta from the *seed* diameter, and
    // the tolerance floor pinned to it, so explorer and replay agree bit
    // for bit on every snapped coordinate.
    delta_abs =
        std::max(opts.delta_fraction * configuration(pts).diameter(), 1e-12);
    cfg = configuration();
    cfg.set_tol_refresh(1e-9 * delta_abs);
    path_steps.clear();
    path_positions.clear();
    visit(pts, std::vector<std::uint8_t>(pts.size(), 1), 0, 0, false,
          config::config_class::asymmetric);
  }

  void record_violation(std::string_view lemma_id) {
    if (result.counterexamples.size() >= opts.max_counterexamples) {
      stop = true;
      return;
    }
    counterexample ce;
    ce.lemma_id = std::string(lemma_id);
    ce.round = path_steps.size();
    ce.trace.initial = *seed;
    ce.trace.delta_fraction = opts.delta_fraction;
    ce.trace.truncation_levels = opts.truncation_levels;
    ce.trace.steps = path_steps;
    ce.path = path_positions;
    result.counterexamples.push_back(std::move(ce));
    if (result.counterexamples.size() >= opts.max_counterexamples) stop = true;
  }

  /// Def. 9 termination check, mirroring engine::gathered (no byzantine
  /// robots in the checked model).
  [[nodiscard]] bool gathered(const configuration& c,
                              const std::vector<vec2>& positions,
                              const std::vector<std::uint8_t>& live) const {
    const vec2* point = nullptr;
    vec2 first{};
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (!live[i]) continue;
      const vec2 p = c.snapped(positions[i]);
      if (point == nullptr) {
        first = p;
        point = &first;
      } else if (!c.tolerance().same_point(*point, p)) {
        return false;
      }
    }
    if (point == nullptr) return false;
    return c.tolerance().same_point(
        spec.algorithm->destination({c, *point}), *point);
  }

  void visit(std::vector<vec2> positions, std::vector<std::uint8_t> live,
             std::size_t crashes_used, std::size_t round, bool have_prev,
             config::config_class prev_cls) {
    if (stop) return;
    ++result.states_generated;
    if (result.states_generated > opts.max_states) {
      result.state_cap_hit = true;
      stop = true;
      return;
    }
    cfg.apply_moves(positions);
    const configuration& c = cfg;
    // Physically merge co-located robots, exactly like engine::run snaps
    // positions_ in place at round start: move origins, recorded paths and
    // the engine's replayed round_record.positions all see the clustered
    // representatives, so a replayed trace walks through bit-identical
    // vectors even when tolerance clustering moves a coordinate.
    for (vec2& p : positions) p = c.snapped(p);
    const config::config_class cls = config::classify(c).cls;

    path_positions.push_back(positions);
    // Transition lemmas are edge properties: an edge into an already-visited
    // state is still a fresh transition (its parent may carry a different
    // class), so they must be evaluated before duplicate pruning can discard
    // the child.  The tally always completes the full lemma sweep for this
    // edge -- record_violation stops *recording* at the counterexample cap,
    // never the coverage accounting.
    if (have_prev) {
      ++result.transitions_checked;
      const auto& tlemmas = core::transition_lemmas();
      for (std::size_t li = 0; li < tlemmas.size(); ++li) {
        tally(result.transition_coverage[li], tlemmas[li].id,
              tlemmas[li].eval(prev_cls, cls));
      }
      if (stop) {
        path_positions.pop_back();
        return;
      }
    }

    // Dedup keys carry the remaining obligations (rounds, crash budget) and
    // the delta length scale: merging two states is only sound when their
    // futures coincide, and the future depends on all three.
    const std::uint64_t rounds_remaining =
        static_cast<std::uint64_t>(opts.max_rounds - round);
    const std::uint64_t budget_remaining =
        static_cast<std::uint64_t>(opts.crash_budget - crashes_used);
    config::state_key raw = config::raw_state_key(c, live);
    raw.words.push_back(rounds_remaining);
    raw.words.push_back(budget_remaining);
    raw.words.push_back(std::bit_cast<std::uint64_t>(delta_abs));
    raw_seen.insert(raw);
    result.raw_unique = raw_seen.size();

    config::state_key key;
    if (opts.canonical_dedup) {
      key = config::canonical_state_key(c, live);
      key.words.push_back(rounds_remaining);
      key.words.push_back(budget_remaining);
      const double ratio = delta_abs / std::max(c.sec().radius, 1e-300);
      key.words.push_back(ratio > 1e6 ? ~std::uint64_t{0}
                                      : config::quantize_scale_free(ratio));
    } else {
      key = std::move(raw);
    }
    if (!visited.insert(std::move(key)).second) {
      ++result.duplicates_pruned;
      path_positions.pop_back();
      return;
    }
    ++result.states_explored;

    expand(positions, live, crashes_used, round, cls);
    path_positions.pop_back();
  }

  void expand(const std::vector<vec2>& positions,
              const std::vector<std::uint8_t>& live, std::size_t crashes_used,
              std::size_t round, config::config_class cls) {
    const configuration& c = cfg;

    // Like the transition sweep in visit(): every state lemma is tallied for
    // this state before the counterexample cap can cut the search short, so
    // `applicable + not_applicable == states_explored` holds even for the
    // state that trips the cap.
    const core::lemma_context ctx{c, *spec.algorithm};
    const auto& slemmas = core::state_lemmas();
    for (std::size_t li = 0; li < slemmas.size(); ++li) {
      tally(result.state_coverage[li], slemmas[li].id, slemmas[li].eval(ctx));
    }
    if (stop) return;

    // Terminal states, in the engine's order: gathered, then the
    // all-stationary fixpoint, then the round bound.
    if (gathered(c, positions, live)) {
      ++result.terminal_gathered;
      return;
    }
    const auto dests = core::destinations(c, *spec.algorithm);
    std::size_t stationary = 0;
    for (std::size_t k = 0; k < dests.size(); ++k) {
      if (c.tolerance().same_point(dests[k], c.occupied()[k].position)) {
        ++stationary;
      }
    }
    if (stationary == c.distinct_count()) {
      ++result.terminal_stalled;
      return;
    }
    if (round >= opts.max_rounds) {
      ++result.bound_reached;
      return;
    }

    // Everything the children need is computed before the first recursive
    // visit clobbers the shared configuration's cache.
    const std::size_t n = positions.size();
    std::vector<vec2> robot_dest(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      const vec2 self = c.snapped(positions[i]);
      // Grid-served first tolerance match == the former linear first-match
      // scan over the sorted occupied array.
      vec2 dest = self;
      if (const auto k = c.first_occupied_match(self)) dest = dests[*k];
      robot_dest[i] = dest;
    }

    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i]) alive.push_back(i);
    }
    const std::size_t climit =
        std::min({opts.max_crashes_per_round,
                  opts.crash_budget - crashes_used, alive.size() - 1});

    // Adversary choice 1: which live robots crash this round.
    for (std::size_t cmask = 0; cmask < (std::size_t{1} << alive.size());
         ++cmask) {
      if (static_cast<std::size_t>(std::popcount(cmask)) > climit) continue;
      std::vector<std::uint8_t> child_live = live;
      std::vector<std::size_t> crashed;
      for (std::size_t j = 0; j < alive.size(); ++j) {
        if ((cmask >> j) & 1u) {
          child_live[alive[j]] = 0;
          crashed.push_back(alive[j]);
        }
      }
      std::vector<std::size_t> rem;
      for (std::size_t i = 0; i < n; ++i) {
        if (child_live[i]) rem.push_back(i);
      }

      // Adversary choice 2: every non-empty activation subset of the
      // still-live robots.
      for (std::size_t amask = 1; amask < (std::size_t{1} << rem.size());
           ++amask) {
        std::vector<std::size_t> active;
        for (std::size_t j = 0; j < rem.size(); ++j) {
          if ((amask >> j) & 1u) active.push_back(rem[j]);
        }

        // Adversary choice 3: per activated robot, a stop on the
        // truncation grid (a single choice when the move completes by the
        // model contract).
        struct option {
          std::uint32_t level = 0;
          vec2 stop;
        };
        std::vector<std::vector<option>> choices(active.size());
        for (std::size_t a = 0; a < active.size(); ++a) {
          const std::size_t i = active[a];
          const double want = geom::distance(positions[i], robot_dest[i]);
          const std::uint32_t levels =
              want <= delta_abs ? 1 : opts.truncation_levels;
          for (std::uint32_t lvl = 0; lvl < levels; ++lvl) {
            choices[a].push_back(
                {lvl, sim::truncated_stop(positions[i], robot_dest[i],
                                          delta_abs, lvl,
                                          opts.truncation_levels)});
          }
        }

        std::vector<std::size_t> pick(active.size(), 0);
        for (;;) {
          std::vector<vec2> next = positions;
          sim::trace_step step;
          step.crashes = crashed;
          step.active.assign(n, 0);
          step.levels.assign(n, 0);
          for (std::size_t a = 0; a < active.size(); ++a) {
            const option& o = choices[a][pick[a]];
            next[active[a]] = o.stop;
            step.active[active[a]] = 1;
            step.levels[active[a]] = o.level;
          }
          path_steps.push_back(std::move(step));
          visit(std::move(next), child_live, crashes_used + crashed.size(),
                round + 1, true, cls);
          path_steps.pop_back();
          if (stop) return;

          std::size_t d = 0;
          while (d < pick.size() && ++pick[d] == choices[d].size()) {
            pick[d] = 0;
            ++d;
          }
          if (d == pick.size()) break;
        }
      }
    }
  }

  void tally(lemma_coverage& cov, std::string_view id,
             core::predicate_verdict v) {
    switch (v) {
      case core::predicate_verdict::not_applicable:
        ++cov.not_applicable;
        break;
      case core::predicate_verdict::satisfied:
        ++cov.applicable;
        break;
      case core::predicate_verdict::violated:
        ++cov.applicable;
        ++cov.violations;
        record_violation(id);
        break;
    }
  }
};

}  // namespace

double check_result::symmetry_reduction() const {
  if (states_explored == 0) return 1.0;
  return static_cast<double>(raw_unique) /
         static_cast<double>(states_explored);
}

std::uint64_t check_result::total_violations() const {
  std::uint64_t total = 0;
  for (const lemma_coverage& cov : state_coverage) total += cov.violations;
  for (const lemma_coverage& cov : transition_coverage) total += cov.violations;
  return total;
}

check_result explore(const check_spec& spec) {
  if (spec.algorithm == nullptr) {
    throw std::invalid_argument("check_spec: algorithm unset");
  }
  if (spec.options.truncation_levels == 0) {
    throw std::invalid_argument("check_options: truncation_levels must be >= 1");
  }
  check_result result;
  for (const core::state_lemma& l : core::state_lemmas()) {
    result.state_coverage.push_back(
        {std::string(l.id), std::string(l.title), 0, 0, 0});
  }
  for (const core::transition_lemma& l : core::transition_lemmas()) {
    result.transition_coverage.push_back(
        {std::string(l.id), std::string(l.title), 0, 0, 0});
  }

  explorer ex{spec, spec.options, result};
  for (const std::vector<vec2>& pts : spec.seeds) {
    if (pts.empty()) throw std::invalid_argument("check_spec: empty seed");
    if (pts.size() > max_robots) {
      throw std::invalid_argument("check_spec: more than 16 robots");
    }
    ++result.seeds;
    ex.run_seed(pts);
    if (ex.stop) break;
  }

  if (spec.metrics != nullptr) {
    obs::metrics_registry local;
    local.counter("check.seeds") = result.seeds;
    local.counter("check.states_generated") = result.states_generated;
    local.counter("check.states_explored") = result.states_explored;
    local.counter("check.duplicates_pruned") = result.duplicates_pruned;
    local.counter("check.raw_unique") = result.raw_unique;
    local.counter("check.transitions") = result.transitions_checked;
    local.counter("check.violations") = result.total_violations();
    local.counter("check.counterexamples") = result.counterexamples.size();
    local.gauge("check.symmetry_reduction") = result.symmetry_reduction();
    spec.metrics->merge(local);
  }
  return result;
}

std::vector<std::vector<vec2>> lattice_multisets(std::size_t w, std::size_t h,
                                                 std::size_t n) {
  std::vector<vec2> points;
  points.reserve(w * h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      points.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  std::vector<std::vector<vec2>> out;
  if (n == 0 || points.empty()) return out;
  // Non-decreasing index tuples enumerate multisets (combinations with
  // repetition) in lexicographic order.
  std::vector<std::size_t> idx(n, 0);
  for (;;) {
    std::vector<vec2> seed;
    seed.reserve(n);
    for (std::size_t i : idx) seed.push_back(points[i]);
    out.push_back(std::move(seed));
    std::size_t d = n;
    while (d > 0 && idx[d - 1] == points.size() - 1) --d;
    if (d == 0) break;
    const std::size_t v = idx[d - 1] + 1;
    for (std::size_t i = d - 1; i < n; ++i) idx[i] = v;
  }
  return out;
}

}  // namespace gather::check
