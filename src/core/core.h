// Umbrella header for the core gathering algorithm (system S3 in DESIGN.md).
#pragma once

#include "core/algorithm.h"
#include "core/lemma_registry.h"
#include "core/predicates.h"
#include "core/wait_free_gather.h"
