#include "core/wait_free_gather.h"

#include <algorithm>
#include <cmath>

#include "config/safe_points.h"
#include "config/views.h"
#include "config/weber.h"
#include "geometry/angles.h"
#include "geometry/predicates.h"

namespace gather::core {

using config::occupied_point;

double wait_free_gather::side_step_angle(const configuration& c, vec2 self,
                                         vec2 elected) {
  const geom::tol& t = c.tolerance();
  const vec2 own_ray = self - elected;
  double sep = geom::two_pi;  // sentinel: no other ray
  bool found = false;
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, elected) || t.same_point(o.position, self)) continue;
    const vec2 ray = o.position - elected;
    const double a = geom::angular_separation(own_ray, ray);
    if (t.ang_zero(a)) continue;  // same ray as self: not a distinct ray
    sep = std::min(sep, a);
    found = true;
  }
  // With no other occupied ray any rotation below pi keeps the robot clear;
  // use a fixed fraction for determinism.
  return found ? sep / 3.0 : geom::pi / 6.0;
}

vec2 wait_free_gather::multiple_case(const configuration& c, vec2 self,
                                     vec2 elected) {
  const geom::tol& t = c.tolerance();
  if (t.same_point(self, elected)) return elected;
  // Free when no occupied location lies strictly between self and the target.
  bool free = true;
  for (const occupied_point& o : c.occupied()) {
    if (geom::in_open_segment(o.position, self, elected, t)) {
      free = false;
      break;
    }
  }
  if (free) return elected;
  // Blocked: side-step clockwise onto a fresh ray at preserved distance
  // (the isosceles move of Fig. 2, lines 7-12).
  return geom::rotated_cw_about(self, elected, side_step_angle(c, self, elected));
}

std::optional<vec2> wait_free_gather::elect_leader(const configuration& c) {
  const geom::tol& t = c.tolerance();
  const auto safe = config::safe_occupied_points(c);
  if (safe.empty()) return std::nullopt;

  std::optional<std::size_t> best;
  config::view best_view;
  double best_sum = 0.0;
  for (std::size_t idx : safe) {
    const occupied_point& o = c.occupied()[idx];
    const double sum = c.sum_distances(o.position);
    if (!best) {
      best = idx;
      best_sum = sum;
      best_view = config::view_of(c, o.position);
      continue;
    }
    const occupied_point& b = c.occupied()[*best];
    if (o.multiplicity != b.multiplicity) {
      if (o.multiplicity > b.multiplicity) {
        best = idx;
        best_sum = sum;
        best_view = config::view_of(c, o.position);
      }
      continue;
    }
    const int scmp = t.len_cmp(sum, best_sum);
    if (scmp != 0) {
      if (scmp < 0) {
        best = idx;
        best_sum = sum;
        best_view = config::view_of(c, o.position);
      }
      continue;
    }
    config::view v = config::view_of(c, o.position);
    if (config::compare_views(v, best_view, t) > 0) {
      best = idx;
      best_sum = sum;
      best_view = std::move(v);
    }
  }
  return c.occupied()[*best].position;
}

vec2 wait_free_gather::linear_2w_case(const configuration& c, vec2 self) {
  const geom::tol& t = c.tolerance();
  // Extreme points of the line: the farthest occupied pair.
  vec2 lo = c.occupied().front().position;
  vec2 hi = lo;
  double best = -1.0;
  for (const occupied_point& a : c.occupied()) {
    for (const occupied_point& b : c.occupied()) {
      const double d = geom::distance(a.position, b.position);
      if (d > best) {
        best = d;
        lo = a.position;
        hi = b.position;
      }
    }
  }
  const vec2 center = geom::midpoint(lo, hi);
  if (t.same_point(self, lo) || t.same_point(self, hi)) {
    // Endpoint robots leave the line: clockwise quarter-of-pi rotation about
    // the line center (Fig. 2, lines 23-26).
    return geom::rotated_cw_about(self, center, geom::pi / 4.0);
  }
  return center;
}

std::vector<vec2> wait_free_gather::destinations(const configuration& c) const {
  std::vector<vec2> out;
  out.reserve(c.distinct_count());
  if (c.is_gathered()) {
    for (const occupied_point& o : c.occupied()) out.push_back(o.position);
    return out;
  }
  const config::classification cls = config::classify(c);
  switch (cls.cls) {
    case config::config_class::bivalent:
      for (const occupied_point& o : c.occupied()) out.push_back(o.position);
      break;
    case config::config_class::multiple:
      for (const occupied_point& o : c.occupied()) {
        out.push_back(multiple_case(c, o.position, *cls.target));
      }
      break;
    case config::config_class::quasi_regular:
    case config::config_class::linear_1w:
      for (std::size_t i = 0; i < c.distinct_count(); ++i) out.push_back(*cls.target);
      break;
    case config::config_class::asymmetric: {
      const auto leader = elect_leader(c);
      for (const occupied_point& o : c.occupied()) {
        out.push_back(leader ? *leader : o.position);
      }
      break;
    }
    case config::config_class::linear_2w:
      for (const occupied_point& o : c.occupied()) {
        out.push_back(linear_2w_case(c, o.position));
      }
      break;
  }
  return out;
}

vec2 wait_free_gather::destination(const snapshot& s) const {
  const configuration& c = s.observed;
  if (c.is_gathered()) return s.self;
  const config::classification cls = config::classify(c);
  switch (cls.cls) {
    case config::config_class::bivalent:
      // Gathering from B is impossible (Lemma 5.2); hold position.
      return s.self;
    case config::config_class::multiple:
      return multiple_case(c, s.self, *cls.target);
    case config::config_class::quasi_regular:
    case config::config_class::linear_1w:
      // Move straight to the (computable, movement-invariant) Weber point.
      return *cls.target;
    case config::config_class::asymmetric: {
      const auto leader = elect_leader(c);
      // Lemma 4.2 guarantees a safe point for non-linear configurations.
      return leader ? *leader : s.self;
    }
    case config::config_class::linear_2w:
      return linear_2w_case(c, s.self);
  }
  return s.self;
}

}  // namespace gather::core
