// Registry of the paper's lemma predicates as runtime-checkable facts.
//
// The simulator and the bounded model checker (src/check) assert the same
// guarantees; this registry gives both one table to iterate so coverage
// reports ("which lemma was checked in how many states") stay in sync with
// the set of implemented predicates.  Two families exist:
//
//   * state lemmas   -- predicates of a single observed configuration (plus
//     the algorithm under test), e.g. Lemma 5.1 wait-freeness or Lemma 4.2
//     safe-point existence;
//   * transition lemmas -- predicates of one observed class transition,
//     e.g. the per-class progress matrix of Lemmas 5.3-5.9.
//
// Every predicate returns a three-valued verdict so coverage accounting can
// distinguish "held" from "did not apply here" (a lemma about non-linear
// configurations says nothing about a linear one).
#pragma once

#include <string_view>
#include <vector>

#include "config/classify.h"
#include "core/algorithm.h"

namespace gather::core {

enum class predicate_verdict {
  not_applicable,  ///< the lemma's hypothesis does not hold in this state
  satisfied,       ///< hypothesis and conclusion both hold
  violated,        ///< hypothesis holds, conclusion fails: a counterexample
};

/// Everything a state lemma may inspect: the observed (round-start, snapped)
/// configuration and the algorithm under test.
struct lemma_context {
  const config::configuration& c;
  const gathering_algorithm& algo;
};

/// A named predicate over one state.
struct state_lemma {
  std::string_view id;     ///< short stable id, e.g. "L5.1"
  std::string_view title;  ///< one-line human description
  predicate_verdict (*eval)(const lemma_context&);
};

/// A named predicate over one observed class transition.
struct transition_lemma {
  std::string_view id;
  std::string_view title;
  predicate_verdict (*eval)(config::config_class from, config::config_class to);
};

/// The per-class progress matrix of Lemmas 5.3-5.9 (claim C1 of each):
///   M -> M;  L1W -> M|L1W;  QR -> M|L1W|QR;  A -> M|L1W|QR|A;
///   L2W -> anything except B;  B is absorbing.
/// `sim::transitions_allowed` folds this over a class history.
[[nodiscard]] bool transition_allowed(config::config_class from,
                                      config::config_class to);

/// The implemented state lemmas, in a fixed documented order.
[[nodiscard]] const std::vector<state_lemma>& state_lemmas();

/// The implemented transition lemmas, in a fixed documented order.
[[nodiscard]] const std::vector<transition_lemma>& transition_lemmas();

}  // namespace gather::core
