// WAIT-FREE-GATHER (paper, Fig. 2 and Sec. V.B).
//
// The algorithm gathers all correct robots starting from any configuration
// except the bivalent one, tolerating up to n-1 crash faults (Theorem 5.1).
// It is wait-free: in every configuration, robots at no more than one
// location are instructed to stay (Lemma 5.1); every other robot always
// makes progress.
//
// Case analysis by configuration class:
//   M   -- move straight to the unique maximum-multiplicity point when the
//          path is free; blocked robots side-step onto a fresh ray (an
//          isosceles rotation about the target by at most a third of the
//          angular gap to the nearest other ray, clockwise by chirality).
//   QR, L1W -- move straight to the Weber point, which is computable for
//          these classes and invariant under the moves (Lemmas 3.2/3.3).
//   A   -- elect the unique leader among the *safe* occupied points,
//          maximizing multiplicity, then minimizing the sum of distances,
//          then maximizing the view; everyone moves straight to it.
//   L2W -- endpoint robots rotate off the line (pi/4 about the line center);
//          all other robots move to the center of the segment between the
//          two extreme points.
//   B   -- gathering is impossible (Lemma 5.2); robots hold position.
#pragma once

#include <optional>

#include "config/classify.h"
#include "core/algorithm.h"

namespace gather::core {

class wait_free_gather final : public gathering_algorithm {
 public:
  [[nodiscard]] vec2 destination(const snapshot& s) const override;
  /// Batched variant: classifies (and, in the A case, elects) once for the
  /// whole configuration instead of once per occupied location.
  [[nodiscard]] std::vector<vec2> destinations(const configuration& c) const override;
  [[nodiscard]] std::string_view name() const override { return "wait-free-gather"; }

  // -- exposed case rules (for tests and benchmarks) -------------------------

  /// M-case rule: destination of a robot at `self` when `elected` is the
  /// unique maximum-multiplicity point.
  [[nodiscard]] static vec2 multiple_case(const configuration& c, vec2 self,
                                          vec2 elected);

  /// A-case election: the unique safe occupied location maximizing
  /// (multiplicity, -sum of distances, view).  Returns nullopt when no
  /// occupied location is safe (cannot happen for non-linear configurations,
  /// Lemma 4.2).
  [[nodiscard]] static std::optional<vec2> elect_leader(const configuration& c);

  /// L2W-case rule: destination of a robot at `self`.
  [[nodiscard]] static vec2 linear_2w_case(const configuration& c, vec2 self);

  /// The clockwise side-step rotation angle used by a blocked robot at
  /// `self` in the M case (a third of the angular gap to the nearest other
  /// occupied ray around `elected`).
  [[nodiscard]] static double side_step_angle(const configuration& c, vec2 self,
                                              vec2 elected);
};

}  // namespace gather::core
