// The algorithm interface of the Look-Compute-Move model.
//
// During its COMPUTE phase a robot receives a snapshot -- the full
// configuration expressed in its own coordinate system together with its own
// position -- and returns a destination point in the same system.  Algorithms
// are oblivious: `destination` is a pure function of the snapshot, which is
// why implementations are const and stateless.
#pragma once

#include <string_view>
#include <vector>

#include "config/configuration.h"

namespace gather::core {

using config::configuration;
using geom::vec2;

/// A robot's observation: the configuration in the robot's local frame and
/// the robot's own position within it (always an occupied location).
///
/// `observed` is a reference: a snapshot is a short-lived window onto a
/// configuration the caller owns, so per-generation derived-geometry caching
/// (classify, views, Weber point) is shared across every destination()
/// computed against the same round's configuration instead of being dropped
/// by a copy.  The referenced configuration must outlive the snapshot --
/// every in-tree call site passes `{c, p}` to an immediate destination()
/// call, which is the intended idiom.
struct snapshot {
  const configuration& observed;
  vec2 self;
};

/// An oblivious deterministic robot algorithm.
class gathering_algorithm {
 public:
  virtual ~gathering_algorithm() = default;

  /// The destination for the robot owning this snapshot, in snapshot
  /// coordinates.  Returning the robot's own position means "stay".
  [[nodiscard]] virtual vec2 destination(const snapshot& s) const = 0;

  /// Destinations for robots at every occupied location of `c`, parallel to
  /// `c.occupied()`.  Semantically identical to calling `destination` per
  /// location (the default does exactly that); implementations may override
  /// to share per-configuration work -- in the ATOM model all robots
  /// activated in a round observe the same configuration, so engines batch
  /// through this entry point.
  [[nodiscard]] virtual std::vector<vec2> destinations(const configuration& c) const;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace gather::core
