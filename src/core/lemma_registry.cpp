#include "core/lemma_registry.h"

#include "config/safe_points.h"
#include "config/views.h"
#include "core/predicates.h"

namespace gather::core {

namespace {

using config::config_class;

/// Lemma 5.1: outside the bivalent configuration, at most one occupied
/// location may be stationary -- otherwise crashing everyone there but one
/// robot on each of two locations stalls the algorithm forever.
predicate_verdict eval_wait_freeness(const lemma_context& ctx) {
  if (config::classify(ctx.c).cls == config_class::bivalent) {
    return predicate_verdict::not_applicable;
  }
  return satisfies_wait_freeness(ctx.c, ctx.algo)
             ? predicate_verdict::satisfied
             : predicate_verdict::violated;
}

/// Lemma 4.1 (structure of linear configurations), read as a classification
/// consistency check: a collinear configuration classifies to B, M, L1W or
/// L2W, and a non-collinear one never lands in the linear classes.
predicate_verdict eval_linear_structure(const lemma_context& ctx) {
  const config_class cls = config::classify(ctx.c).cls;
  const bool linear_class = cls == config_class::bivalent ||
                            cls == config_class::multiple ||
                            cls == config_class::linear_1w ||
                            cls == config_class::linear_2w;
  if (ctx.c.is_linear()) {
    return linear_class ? predicate_verdict::satisfied
                        : predicate_verdict::violated;
  }
  const bool in_l = cls == config_class::linear_1w || cls == config_class::linear_2w;
  return in_l ? predicate_verdict::violated : predicate_verdict::satisfied;
}

/// Lemma 4.2: every non-linear configuration has at least one safe occupied
/// point (Def. 8) -- the asymmetric case of the algorithm elects its leader
/// among these, so their existence is load-bearing.
predicate_verdict eval_safe_point_exists(const lemma_context& ctx) {
  if (ctx.c.is_linear()) return predicate_verdict::not_applicable;
  return config::safe_occupied_points(ctx.c).empty()
             ? predicate_verdict::violated
             : predicate_verdict::satisfied;
}

/// Def. 3 consistency: locations sharing a view are related by a rotation
/// about the SEC center, so every non-trivial view class is equidistant from
/// the center and carries one common multiplicity.
predicate_verdict eval_symmetry_classes(const lemma_context& ctx) {
  const auto& c = ctx.c;
  const auto classes = config::view_classes(c);
  const geom::tol& t = c.tolerance();
  bool applicable = false;
  for (const auto& cls : classes) {
    if (cls.size() < 2) continue;
    applicable = true;
    const auto& first = c.occupied()[cls.front()];
    const double d0 = geom::distance(first.position, c.sec().center);
    for (std::size_t idx : cls) {
      const auto& o = c.occupied()[idx];
      if (o.multiplicity != first.multiplicity) {
        return predicate_verdict::violated;
      }
      if (!t.len_eq(geom::distance(o.position, c.sec().center), d0)) {
        return predicate_verdict::violated;
      }
    }
  }
  return applicable ? predicate_verdict::satisfied
                    : predicate_verdict::not_applicable;
}

/// Progress safety in target-directed classes (M, L1W, QR): every emitted
/// destination is either straight at the elected target or a constant-radius
/// side-step rotated about it (the detour around an obstructing occupied
/// location), so no move increases a robot's distance to the target -- the
/// invariant the Lemma 5.3-5.5 convergence arguments rest on.  Not
/// applicable when classification elects no target (B, L2W, A).
predicate_verdict eval_target_distance(const lemma_context& ctx) {
  const auto& c = ctx.c;
  const auto cls = config::classify(c);
  if (!cls.target) return predicate_verdict::not_applicable;
  const auto dests = destinations(c, ctx.algo);
  const geom::tol& t = c.tolerance();
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const double before = geom::distance(c.occupied()[i].position, *cls.target);
    const double after = geom::distance(dests[i], *cls.target);
    if (!t.len_le(after, before)) return predicate_verdict::violated;
  }
  return predicate_verdict::satisfied;
}

/// Lemmas 5.3-5.9 as one transition predicate over observed classes.
predicate_verdict eval_class_transition(config_class from, config_class to) {
  return transition_allowed(from, to) ? predicate_verdict::satisfied
                                      : predicate_verdict::violated;
}

/// Lemmas 5.6/5.7 isolate the one fatal transition: entering the bivalent
/// configuration B from outside it (gathering is unsolvable from B).
predicate_verdict eval_no_bivalent_entry(config_class from, config_class to) {
  if (to != config_class::bivalent) return predicate_verdict::satisfied;
  return from == config_class::bivalent ? predicate_verdict::satisfied
                                        : predicate_verdict::violated;
}

}  // namespace

bool transition_allowed(config_class from, config_class to) {
  using cc = config_class;
  switch (from) {
    case cc::multiple:
      return to == cc::multiple;
    case cc::linear_1w:
      return to == cc::multiple || to == cc::linear_1w;
    case cc::quasi_regular:
      return to == cc::multiple || to == cc::linear_1w || to == cc::quasi_regular;
    case cc::asymmetric:
      return to == cc::multiple || to == cc::linear_1w ||
             to == cc::quasi_regular || to == cc::asymmetric;
    case cc::linear_2w:
      return to != cc::bivalent;
    case cc::bivalent:
      return to == cc::bivalent;
  }
  return false;
}

const std::vector<state_lemma>& state_lemmas() {
  static const std::vector<state_lemma> lemmas = {
      {"L5.1", "wait-freeness: at most one stationary location outside B",
       eval_wait_freeness},
      {"L4.1", "linear configurations classify to B/M/L1W/L2W",
       eval_linear_structure},
      {"L4.2", "non-linear configurations have a safe occupied point",
       eval_safe_point_exists},
      {"D3", "view classes are equidistant from the SEC center, equal mult",
       eval_symmetry_classes},
      {"L5.3-5.5", "moves never increase the distance to the elected target",
       eval_target_distance},
  };
  return lemmas;
}

const std::vector<transition_lemma>& transition_lemmas() {
  static const std::vector<transition_lemma> lemmas = {
      {"L5.3-5.9", "only lawful class transitions occur",
       eval_class_transition},
      {"L5.6-5.7", "the bivalent configuration is never entered",
       eval_no_bivalent_entry},
  };
  return lemmas;
}

}  // namespace gather::core
