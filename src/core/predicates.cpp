#include "core/predicates.h"

#include "config/classify.h"

namespace gather::core {

std::vector<vec2> gathering_algorithm::destinations(const configuration& c) const {
  std::vector<vec2> out;
  out.reserve(c.distinct_count());
  for (const config::occupied_point& o : c.occupied()) {
    out.push_back(destination({c, o.position}));
  }
  return out;
}

std::vector<vec2> destinations(const configuration& c,
                               const gathering_algorithm& algo) {
  return algo.destinations(c);
}

std::vector<vec2> stationary_locations(const configuration& c,
                                       const gathering_algorithm& algo) {
  const auto dests = destinations(c, algo);
  // Quiescence is measured three orders of magnitude below the co-location
  // tolerance: every "stay" rule of the algorithm returns the location value
  // itself (bitwise or near-bitwise), while genuine moves -- including
  // near-degenerate side-steps whose commanded displacement can approach the
  // co-location tolerance from above -- stay well clear of this threshold.
  const double eps = 1e-3 * c.tolerance().len_eps();
  std::vector<vec2> out;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const vec2 p = c.occupied()[i].position;
    if (geom::distance(dests[i], p) <= eps) out.push_back(p);
  }
  return out;
}

bool satisfies_wait_freeness(const configuration& c,
                             const gathering_algorithm& algo) {
  if (c.is_gathered()) return true;
  if (config::classify(c).cls == config::config_class::bivalent) return true;
  return stationary_locations(c, algo).size() <= 1;
}

}  // namespace gather::core
