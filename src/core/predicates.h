// Algorithm-level predicates: the paper's M(P, A) move set (Sec. V.A) and
// the wait-freeness condition of Lemma 5.1.
#pragma once

#include <vector>

#include "core/algorithm.h"

namespace gather::core {

/// Destination of the robot(s) at each occupied location, parallel to
/// `c.occupied()`.  Because algorithms are functions of (configuration, own
/// position), co-located robots always share a destination.
[[nodiscard]] std::vector<vec2> destinations(const configuration& c,
                                             const gathering_algorithm& algo);

/// The occupied locations the algorithm instructs to *stay*,
/// i.e. U(P) \ M(P, A).
[[nodiscard]] std::vector<vec2> stationary_locations(const configuration& c,
                                                     const gathering_algorithm& algo);

/// Lemma 5.1: an algorithm tolerates up to n-1 crashes only if at most one
/// occupied location is stationary in every configuration.  (The bivalent
/// configuration, where gathering is impossible, is exempt.)
[[nodiscard]] bool satisfies_wait_freeness(const configuration& c,
                                           const gathering_algorithm& algo);

}  // namespace gather::core
