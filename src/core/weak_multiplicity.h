// Weak-multiplicity capability ablation.
//
// The paper assumes *strong* multiplicity detection (exact per-point robot
// counts) and argues it is necessary for gathering from arbitrary
// configurations: with only weak detection ("one robot" vs "more than one")
// the bivalent configuration -- from which gathering is impossible -- is
// indistinguishable from two-point configurations with unequal stacks, from
// which gathering is required.  This adapter degrades any algorithm's
// snapshot to weak detection by capping every multiplicity at two, letting
// the model-limits experiment exhibit exactly that failure: a (k, n-k) stack
// pair with k != n-k looks bivalent, so the adapted algorithm freezes.
#pragma once

#include "core/algorithm.h"

namespace gather::core {

class weak_multiplicity_adapter final : public gathering_algorithm {
 public:
  /// `inner` must outlive the adapter.
  explicit weak_multiplicity_adapter(const gathering_algorithm& inner)
      : inner_(inner) {}

  [[nodiscard]] vec2 destination(const snapshot& s) const override;
  [[nodiscard]] std::string_view name() const override { return "weak-multiplicity"; }

 private:
  const gathering_algorithm& inner_;
};

}  // namespace gather::core
