#include "core/weak_multiplicity.h"

#include <algorithm>
#include <vector>

namespace gather::core {

vec2 weak_multiplicity_adapter::destination(const snapshot& s) const {
  // Weak detection: a point reveals only "one" or "more than one" robot.
  // Rebuild the observed configuration with every count capped at two.
  std::vector<vec2> degraded;
  degraded.reserve(s.observed.size());
  for (const config::occupied_point& o : s.observed.occupied()) {
    const int seen = std::min(o.multiplicity, 2);
    for (int k = 0; k < seen; ++k) degraded.push_back(o.position);
  }
  const configuration weak(std::move(degraded));
  return inner_.destination({weak, weak.snapped(s.self)});
}

}  // namespace gather::core
