# Script mode (cmake -P): configure and build a UBSan child tree, then run
# the geometry and sim unit tests under it.
#
#   cmake -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch> -P UbsanSmoke.cmake
#
# The child build uses GATHER_SANITIZE=undefined with recovery disabled, so
# any UB report aborts the offending test and this script fails — a green
# run certifies zero reports.  GATHER_CHECK_INVARIANTS=ON additionally
# compiles the GATHER_CHECK contracts (sec containment, hull convexity,
# multiplicity conservation) into hard asserts, so the same run also
# certifies the geometric invariants on every covered execution.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch> -P UbsanSmoke.cmake")
endif()

include(ProcessorCount)
ProcessorCount(nproc)
if(nproc EQUAL 0)
  set(nproc 4)
endif()

message(STATUS "ubsan-smoke: configure ${WORK_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${WORK_DIR}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          -DGATHER_SANITIZE=undefined
          -DGATHER_CHECK_INVARIANTS=ON
          -DGATHER_BUILD_BENCH=OFF
          -DGATHER_BUILD_EXAMPLES=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan-smoke: configure failed (${rc})")
endif()

message(STATUS "ubsan-smoke: build test_geometry test_sim (-j${nproc})")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${WORK_DIR}
          --target test_geometry test_sim --parallel ${nproc}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ubsan-smoke: build failed (${rc})")
endif()

foreach(test_bin test_geometry test_sim)
  message(STATUS "ubsan-smoke: run ${test_bin}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1
            ${WORK_DIR}/tests/${test_bin}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ubsan-smoke: ${test_bin} failed (${rc})")
  endif()
endforeach()

message(STATUS "ubsan-smoke: OK (zero UB reports, invariant contracts held)")
