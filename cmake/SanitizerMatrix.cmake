# The sanitizer gate matrix (docs/STATIC_ANALYSIS.md, `ctest -L sanitize`).
#
# Each row is a child configure+build of this source tree under one
# sanitizer (cmake/SanitizerSmoke.cmake does the heavy lifting), covering
# the surfaces that sanitizer is best at:
#
#   ubsan_smoke  undefined + GATHER_CHECK contracts  test_geometry, test_sim
#   asan_smoke   address                             test_obs, test_campaign_service
#   tsan_smoke   thread                              test_runner, test_campaign_service,
#                                                    test_kernels (sharded view fill),
#                                                    gather_campaignd + daemon_stress.py
#
# A sanitizer the compiler cannot link is probed at configure time; its row
# is registered DISABLED, so ctest reports a clean "Not Run" skip instead of
# a spurious failure.  Included from StaticAnalysis.cmake inside
# `if(NOT GATHER_SANITIZE)` -- never nest a sanitizer build inside another.

include(CheckCXXSourceCompiles)

function(_gather_probe_sanitizer which out_var)
  set(CMAKE_REQUIRED_FLAGS "-fsanitize=${which}")
  check_cxx_source_compiles("int main() { return 0; }" ${out_var})
  set(${out_var} ${${out_var}} PARENT_SCOPE)
endfunction()

_gather_probe_sanitizer(undefined GATHER_HAS_UBSAN)
_gather_probe_sanitizer(address GATHER_HAS_ASAN)
_gather_probe_sanitizer(thread GATHER_HAS_TSAN)

# _gather_smoke(<name> <sanitize> <invariants> <targets> <runs> [driver driver_bin])
# targets/runs are comma-separated; runs are binary paths under the child
# work dir.  The optional driver is a python script run against a child
# binary (requires Python3, probed by StaticAnalysis.cmake).
function(_gather_smoke name sanitize invariants targets runs)
  set(_cmd ${CMAKE_COMMAND}
      -DSOURCE_DIR=${CMAKE_SOURCE_DIR}
      -DWORK_DIR=${CMAKE_BINARY_DIR}/${name}
      -DSANITIZE=${sanitize}
      -DCHECK_INVARIANTS=${invariants}
      -DTARGETS=${targets}
      -DRUN_TESTS=${runs})
  if(ARGC GREATER 5)
    if(NOT Python3_Interpreter_FOUND)
      message(STATUS "${name}: Python3 not found, daemon driver dropped")
    else()
      list(GET ARGN 0 _driver)
      list(GET ARGN 1 _driver_bin)
      list(APPEND _cmd -DDRIVER=${_driver} -DDRIVER_BIN=${_driver_bin}
                       -DPYTHON=${Python3_EXECUTABLE})
    endif()
  endif()
  list(APPEND _cmd -P ${CMAKE_SOURCE_DIR}/cmake/SanitizerSmoke.cmake)
  add_test(NAME ${name} COMMAND ${_cmd})
  # RUN_SERIAL: the child's parallel compile would starve concurrent tests.
  set_tests_properties(${name} PROPERTIES
    LABELS "sanitize" TIMEOUT 1800 RUN_SERIAL TRUE COST 10000)
endfunction()

_gather_smoke(ubsan_smoke undefined ON
  "test_geometry,test_sim"
  "tests/test_geometry,tests/test_sim")
if(NOT GATHER_HAS_UBSAN)
  set_tests_properties(ubsan_smoke PROPERTIES DISABLED TRUE)
endif()

_gather_smoke(asan_smoke address OFF
  "test_obs,test_campaign_service"
  "tests/test_obs,tests/test_campaign_service")
if(NOT GATHER_HAS_ASAN)
  set_tests_properties(asan_smoke PROPERTIES DISABLED TRUE)
endif()

_gather_smoke(tsan_smoke thread OFF
  "test_runner,test_campaign_service,test_kernels,gather_campaignd"
  "tests/test_runner,tests/test_campaign_service,tests/test_kernels"
  ${CMAKE_SOURCE_DIR}/tools/service/daemon_stress.py
  tools/gather_campaignd)
if(NOT GATHER_HAS_TSAN)
  set_tests_properties(tsan_smoke PROPERTIES DISABLED TRUE)
endif()
