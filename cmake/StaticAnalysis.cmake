# Static-analysis and sanitizer gates (docs/STATIC_ANALYSIS.md).
#
# `ctest -L lint` is the one-command gate: the always-on gather-lint pass
# (plus its fixture self-test), clang-tidy, and clang-format.  The two
# clang tools exit 127 when the binary is not on PATH, which maps to ctest
# SKIP rather than failure, so the gate degrades gracefully on toolchains
# without LLVM while staying strict where it is installed.
#
# `ctest -L sanitize` runs the sanitizer gate matrix
# (cmake/SanitizerMatrix.cmake): child configure+builds of this source tree
# under UBSan (+ GATHER_CHECK contracts), ASan, and TSan, each running the
# test binaries that exercise what that sanitizer is best at; the TSan row
# additionally races gather_campaignd with a submit/cancel/drain stress
# driver.  Green means zero reports across the matrix.

find_package(Python3 COMPONENTS Interpreter)

if(Python3_Interpreter_FOUND)
  set(_lint_dir ${CMAKE_SOURCE_DIR}/tools/lint)

  add_test(NAME lint_gather
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/gather_lint.py
            --root ${CMAKE_SOURCE_DIR} src tools bench tests)
  add_test(NAME lint_selftest
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/gather_lint.py --self-test)

  # gather-analyze: the scope-aware pass (R6 reference invalidation, R7
  # lock discipline, R8 include-graph layering) plus the stale-suppression
  # audit over every gather-lint allow() annotation.
  add_test(NAME lint_analyze
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/gather_analyze.py
            --root ${CMAKE_SOURCE_DIR} --stale-allows src tools bench tests)
  add_test(NAME lint_analyze_selftest
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/gather_analyze.py --self-test)
  set_tests_properties(lint_gather lint_selftest lint_analyze
                       lint_analyze_selftest PROPERTIES LABELS "lint")

  add_test(NAME lint_clang_tidy
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/run_clang_tidy.py
            --build-dir ${CMAKE_BINARY_DIR} --root ${CMAKE_SOURCE_DIR})
  add_test(NAME format-check
    COMMAND ${Python3_EXECUTABLE} ${_lint_dir}/check_format.py
            --root ${CMAKE_SOURCE_DIR})
  set_tests_properties(lint_clang_tidy format-check PROPERTIES
    LABELS "lint" SKIP_RETURN_CODE 127)
  set_tests_properties(lint_clang_tidy PROPERTIES TIMEOUT 1800)

  # validate_jsonl must reject degenerate inputs: an empty trace and a
  # missing file are both hard failures, not vacuous successes.
  file(WRITE ${CMAKE_BINARY_DIR}/lint-scratch/empty_trace.jsonl "")
  add_test(NAME validate_jsonl_rejects_empty
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/validate_jsonl.py
            ${CMAKE_BINARY_DIR}/lint-scratch/empty_trace.jsonl)
  add_test(NAME validate_jsonl_rejects_missing
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/validate_jsonl.py
            ${CMAKE_BINARY_DIR}/lint-scratch/no_such_trace.jsonl)
  set_tests_properties(validate_jsonl_rejects_empty
                       validate_jsonl_rejects_missing
    PROPERTIES WILL_FAIL TRUE LABELS "lint")

  # `cmake --build build --target lint` == `ctest -L lint`.
  add_custom_target(lint
    COMMAND ${CMAKE_CTEST_COMMAND} -L lint --output-on-failure
    WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
    COMMENT "gather lint gate (ctest -L lint)"
    VERBATIM)

  # `ctest -L service` is the campaign-service gate (docs/RUNNER.md): the
  # gather_campaignd protocol smoke, the sharded/killed/resumed/merged
  # byte-determinism demo, and checkpoint corruption rejection.
  set(_service_dir ${CMAKE_SOURCE_DIR}/tools/service)
  add_test(NAME service_daemon_smoke
    COMMAND ${Python3_EXECUTABLE} ${_service_dir}/daemon_smoke.py
            $<TARGET_FILE:gather_campaignd>)
  add_test(NAME service_resume_determinism
    COMMAND ${Python3_EXECUTABLE} ${_service_dir}/resume_determinism.py
            $<TARGET_FILE:gather_campaign> $<TARGET_FILE:gather_campaignd>)
  add_test(NAME service_checkpoint_reject
    COMMAND ${Python3_EXECUTABLE} ${_service_dir}/checkpoint_reject.py
            $<TARGET_FILE:gather_campaign>)
  set_tests_properties(service_daemon_smoke service_resume_determinism
                       service_checkpoint_reject
    PROPERTIES LABELS "service" TIMEOUT 600)

  # `cmake --build build --target service` == `ctest -L service`.
  add_custom_target(service
    COMMAND ${CMAKE_CTEST_COMMAND} -L service --output-on-failure
    WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
    COMMENT "campaign service gate (ctest -L service)"
    VERBATIM)
else()
  message(STATUS "Python3 not found: lint and service gates not registered")
endif()

# Sanitizer gate matrix (ubsan_smoke, asan_smoke, tsan_smoke): child
# builds, so the main tree's flags are untouched.
if(NOT GATHER_SANITIZE)  # don't nest a sanitizer build inside another
  include(${CMAKE_SOURCE_DIR}/cmake/SanitizerMatrix.cmake)
endif()
