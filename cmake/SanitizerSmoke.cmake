# Script mode (cmake -P): configure and build a sanitizer child tree, run
# the selected test binaries under it, and optionally drive a daemon stress
# script against a child-built tool.  One script serves the whole matrix
# (cmake/SanitizerMatrix.cmake registers ubsan_smoke / asan_smoke /
# tsan_smoke on top of it).
#
#   cmake -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch> -DSANITIZE=<which>
#         -DCHECK_INVARIANTS=<ON|OFF> -DTARGETS=a,b -DRUN_TESTS=tests/a,tests/b
#         [-DDRIVER=<script.py> -DDRIVER_BIN=tools/bin -DPYTHON=<python3>]
#         -P SanitizerSmoke.cmake
#
# The child build uses GATHER_SANITIZE=${SANITIZE} with recovery disabled
# (see the root CMakeLists), so any report aborts the offending process and
# this script fails -- a green run certifies zero reports.  Comma-separated
# list arguments avoid quoting semicolons through add_test.

foreach(required SOURCE_DIR WORK_DIR SANITIZE TARGETS RUN_TESTS)
  if(NOT ${required})
    message(FATAL_ERROR "sanitizer-smoke: missing -D${required}=...")
  endif()
endforeach()
if(NOT DEFINED CHECK_INVARIANTS)
  set(CHECK_INVARIANTS OFF)
endif()

string(REPLACE "," ";" _targets "${TARGETS}")
string(REPLACE "," ";" _runs "${RUN_TESTS}")

# halt_on_error turns the first report into a non-zero exit, so "green"
# below always means "zero reports", never "reports scrolled past".
if(SANITIZE STREQUAL "undefined")
  set(_env "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1")
elseif(SANITIZE STREQUAL "address")
  set(_env "ASAN_OPTIONS=halt_on_error=1:detect_leaks=1")
elseif(SANITIZE STREQUAL "thread")
  set(_env "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1")
else()
  message(FATAL_ERROR "sanitizer-smoke: unknown SANITIZE '${SANITIZE}'")
endif()

include(ProcessorCount)
ProcessorCount(nproc)
if(nproc EQUAL 0)
  set(nproc 4)
endif()

message(STATUS "${SANITIZE}-smoke: configure ${WORK_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${WORK_DIR}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          -DGATHER_SANITIZE=${SANITIZE}
          -DGATHER_CHECK_INVARIANTS=${CHECK_INVARIANTS}
          -DGATHER_BUILD_BENCH=OFF
          -DGATHER_BUILD_EXAMPLES=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${SANITIZE}-smoke: configure failed (${rc})")
endif()

message(STATUS "${SANITIZE}-smoke: build ${TARGETS} (-j${nproc})")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${WORK_DIR}
          --target ${_targets} --parallel ${nproc}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${SANITIZE}-smoke: build failed (${rc})")
endif()

foreach(test_bin ${_runs})
  message(STATUS "${SANITIZE}-smoke: run ${test_bin}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${_env} ${WORK_DIR}/${test_bin}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SANITIZE}-smoke: ${test_bin} failed (${rc})")
  endif()
endforeach()

if(DRIVER)
  if(NOT DRIVER_BIN OR NOT PYTHON)
    message(FATAL_ERROR "sanitizer-smoke: DRIVER needs DRIVER_BIN and PYTHON")
  endif()
  message(STATUS "${SANITIZE}-smoke: drive ${DRIVER} against ${DRIVER_BIN}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${_env}
            ${PYTHON} ${DRIVER} ${WORK_DIR}/${DRIVER_BIN}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SANITIZE}-smoke: driver failed (${rc})")
  endif()
endif()

message(STATUS "${SANITIZE}-smoke: OK (zero reports)")
